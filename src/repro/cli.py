"""Command-line interface for running simulations and paper experiments.

Installed as the ``repro`` console script (also runnable as
``python -m repro.cli``; the legacy ``repro-spatial-cache`` alias is kept).
Nine sub-commands are provided (see ``docs/cli.md`` for a full guide):

* ``compare`` — run PAG / SEM / APRO (and optionally FPRO / CPRO) on one
  trace and print the headline metrics;
* ``fleet`` — simulate many heterogeneous clients against one shared server
  and print per-group and server-load metrics; supports halting mid-run and
  resuming from persisted cache snapshots (``--halt-after`` / ``--resume``)
  and a live ops dashboard while the run executes (``--status-port``);
* ``serve`` — run a standalone wire-protocol server until interrupted,
  optionally with the live ops dashboard on a second port;
* ``trace`` — replay a seeded fleet under the recording instrument and
  print a text flame view (optionally exporting one JSON line per query);
* ``figure`` — regenerate one of the paper's figures (``6``–``11``,
  ``table61`` or ``overheads``);
* ``params`` — print the Table 6.1 parameter sheet for a configuration;
* ``bench`` — run the perf-regression scenario suite, write a
  ``BENCH_*.json`` report and optionally gate against a committed baseline;
* ``persist`` — checkpoint a server R-tree into a ``.rpro`` page store,
  inspect one (header + write-ahead-log facts), verify it (WAL validation
  plus the backend-invariance differential), repair a damaged WAL tail or
  pack the log back into a fresh checkpoint;
* ``lint`` — run the AST-based determinism & invariant linter
  (:mod:`repro.analysis`) and exit non-zero on findings.
"""

from __future__ import annotations

import argparse
from typing import List, Optional, Sequence

from repro.experiments import fig6, fig7, fig8, fig9, fig10, fig11, overheads, table61
from repro.experiments.report import (
    format_fleet_report, format_latency_line, format_table,
)
from repro.sim.config import SimulationConfig
from repro.sim.fleet import ClientGroupSpec, FleetConfig, default_fleet, run_fleet
from repro.sim.runner import run_comparison


_FIGURES = {
    "6": fig6,
    "7": fig7,
    "8": fig8,
    "9": fig9,
    "10": fig10,
    "11": fig11,
    "table61": table61,
    "overheads": overheads,
}


def _add_config_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--queries", type=int, default=250,
                        help="number of queries to simulate (default: 250)")
    parser.add_argument("--objects", type=int, default=4_000,
                        help="number of data objects (default: 4000)")
    parser.add_argument("--dataset", choices=("NE", "RD", "UNIFORM"), default="NE",
                        help="synthetic dataset family (default: NE)")
    parser.add_argument("--mobility", choices=("RAN", "DIR"), default="RAN",
                        help="mobility model (default: RAN)")
    parser.add_argument("--cache", type=float, default=0.01,
                        help="cache size as a fraction of the dataset (default: 0.01)")
    parser.add_argument("--replacement", default="GRD3",
                        help="replacement policy for proactive caching (default: GRD3)")
    parser.add_argument("--seed", type=int, default=7, help="dataset seed (default: 7)")
    parser.add_argument("--paper-scale", action="store_true",
                        help="use the paper's full Table 6.1 parameters instead "
                             "of the scaled defaults (very slow in pure Python)")


def config_from_args(args: argparse.Namespace) -> SimulationConfig:
    """Build a :class:`SimulationConfig` from parsed CLI arguments."""
    if getattr(args, "paper_scale", False):
        base = SimulationConfig.paper()
        return base.with_overrides(mobility_model=args.mobility,
                                   cache_fraction=args.cache,
                                   replacement_policy=args.replacement)
    return SimulationConfig.scaled(query_count=args.queries, object_count=args.objects,
                                   seed=args.seed).with_overrides(
        dataset_name=args.dataset,
        mobility_model=args.mobility,
        cache_fraction=args.cache,
        replacement_policy=args.replacement)


def _run_compare(args: argparse.Namespace) -> str:
    from repro.storage import StorageError
    config = config_from_args(args)
    models = tuple(model.strip().upper() for model in args.models.split(","))
    try:
        results = run_comparison(config, models=models, store_path=args.store)
    except (OSError, StorageError) as error:
        raise SystemExit(f"repro compare: error: {error}")
    metrics = ("uplink_bytes", "downlink_bytes", "cache_hit_rate", "byte_hit_rate",
               "false_miss_rate", "response_time", "client_cpu_ms")
    rows = [[metric] + [results[m].summary()[metric] for m in models] for metric in metrics]
    return format_table(["metric"] + list(models), rows,
                        title=f"Caching model comparison ({config.query_count} queries, "
                              f"|C|={config.cache_fraction:.1%}, {config.mobility_model})")


_GROUP_MODELS = ("PAG", "SEM", "APRO", "FPRO", "CPRO")
_GROUP_MOBILITY = ("RAN", "DIR")


def parse_group_spec(text: str) -> ClientGroupSpec:
    """Parse one ``--group`` value.

    Format: ``name:count[:mobility[:model[:cache_fraction[:speed_factor]]]]``,
    e.g. ``vehicles:20:DIR:APRO:0.005:8``.  Model and mobility names are
    validated here so a typo fails at parse time, not mid-run (possibly
    inside a worker process).
    """
    parts = text.split(":")
    if len(parts) < 2:
        raise argparse.ArgumentTypeError(
            f"group spec {text!r} must be name:count[:mobility[:model[:cache[:speed]]]]")
    try:
        spec = ClientGroupSpec(
            name=parts[0],
            clients=int(parts[1]),
            mobility_model=parts[2].upper() if len(parts) > 2 and parts[2] else "RAN",
            model=parts[3].upper() if len(parts) > 3 and parts[3] else "APRO",
            cache_fraction=float(parts[4]) if len(parts) > 4 and parts[4] else None,
            speed_factor=float(parts[5]) if len(parts) > 5 and parts[5] else 1.0,
        )
    except ValueError as error:
        raise argparse.ArgumentTypeError(f"bad group spec {text!r}: {error}")
    if spec.mobility_model not in _GROUP_MOBILITY:
        raise argparse.ArgumentTypeError(
            f"bad group spec {text!r}: mobility must be one of {_GROUP_MOBILITY}")
    if spec.model not in _GROUP_MODELS:
        raise argparse.ArgumentTypeError(
            f"bad group spec {text!r}: model must be one of {_GROUP_MODELS}")
    return spec


def _update_summary_line(summary: dict) -> str:
    """The one-line server-side update digest under a fleet report."""
    line = ("\nserver updates: "
            f"{summary['applied']} applied "
            f"({summary['inserts']} insert / {summary['deletes']} "
            f"delete / {summary['modifies']} modify), "
            f"{summary['live_objects']} live objects")
    if summary.get("wal_commits"):
        line += f", {summary['wal_commits']} WAL commits"
    return line


def _run_fleet(args: argparse.Namespace) -> str:
    from repro.storage import StorageError
    if args.status_port is not None and (args.resume or args.halt_after):
        raise SystemExit("repro fleet: error: --status-port cannot be "
                         "combined with --resume/--halt-after")
    if args.resume:
        if args.update_rate or args.consistency != "none":
            # The session file is authoritative for a resumed fleet; the
            # dynamic flags would be silently dropped otherwise.
            raise SystemExit(
                "repro fleet: error: --update-rate/--consistency cannot be "
                "combined with --resume (the session file already records "
                "the fleet's dynamic configuration)")
        if args.durable:
            raise SystemExit(
                "repro fleet: error: --durable cannot be combined with "
                "--resume (the session file records whether the halted run "
                "was durable)")
        if args.shards is not None:
            raise SystemExit(
                "repro fleet: error: --shards cannot be combined with "
                "--resume (sharded fleets are not resumable)")
        if args.router_cache or args.router_cache_bytes is not None:
            raise SystemExit(
                "repro fleet: error: --router-cache cannot be combined "
                "with --resume (sharded fleets are not resumable)")
        if args.transport != "inproc":
            raise SystemExit(
                "repro fleet: error: --transport cannot be combined with "
                "--resume (networked fleets are not resumable)")
        from repro.sim.restart import resume_fleet
        try:
            result, state = resume_fleet(args.resume)
        except (OSError, ValueError, StorageError) as error:
            raise SystemExit(f"repro fleet: error: cannot resume: {error}")
        processed = state["processed_events"]
        total = state["total_events"]
        report = format_fleet_report(
            result, title=f"Fleet simulation — resumed from {args.resume} "
                          f"(events {processed}/{total} were pre-restart)")
        if result.update_summary:
            report += _update_summary_line(result.update_summary)
        return report

    base = SimulationConfig.scaled(query_count=args.queries, object_count=args.objects,
                                   seed=args.seed).with_overrides(
        dataset_name=args.dataset, cache_fraction=args.cache,
        replacement_policy=args.replacement)
    try:
        if args.group:
            fleet = FleetConfig.make(base, args.group, fleet_seed=args.fleet_seed)
        else:
            fleet = default_fleet(args.clients, base=base, fleet_seed=args.fleet_seed)
        if args.update_rate or args.consistency != "none":
            import dataclasses
            fleet = dataclasses.replace(fleet, update_rate=args.update_rate,
                                        consistency=args.consistency,
                                        ttl_seconds=args.ttl)
        if args.shards is not None:
            import dataclasses
            fleet = dataclasses.replace(fleet, shards=args.shards,
                                        partitioner=args.partitioner)
        if args.router_cache or args.router_cache_bytes is not None:
            import dataclasses
            from repro.sharding import DEFAULT_CACHE_BYTES
            fleet = dataclasses.replace(
                fleet, router_cache=True,
                router_cache_bytes=(args.router_cache_bytes
                                    if args.router_cache_bytes is not None
                                    else DEFAULT_CACHE_BYTES))
        if args.transport != "inproc":
            import dataclasses
            fleet = dataclasses.replace(fleet, transport=args.transport)
    except ValueError as error:
        # Cross-group validation (duplicate names, non-positive totals) that
        # parse_group_spec cannot see: fail like an argparse error, not a
        # traceback.
        raise SystemExit(f"repro fleet: error: {error}")

    if args.halt_after is not None:
        from repro.sim.restart import run_fleet_interrupted
        if args.transport != "inproc":
            raise SystemExit("repro fleet: error: --halt-after is "
                             "inproc-only (networked fleets are not "
                             "resumable)")
        if not args.session_dir:
            raise SystemExit("repro fleet: error: --halt-after requires "
                             "--session-dir to persist the session")
        try:
            state = run_fleet_interrupted(fleet, halt_after=args.halt_after,
                                          directory=args.session_dir,
                                          store_path=args.store,
                                          durable=args.durable)
        except (OSError, ValueError, StorageError) as error:
            raise SystemExit(f"repro fleet: error: {error}")
        return (f"Fleet halted after {state['processed_events']} of "
                f"{state['total_events']} events; session saved to "
                f"{args.session_dir}.\nResume with: repro fleet --resume "
                f"{args.session_dir}")

    from contextlib import ExitStack
    stack = ExitStack()
    status_thread = None
    if args.status_port is not None:
        if args.workers and args.workers > 1:
            raise SystemExit("repro fleet: error: --status-port needs a "
                             "serial run (worker processes cannot share "
                             "the in-process metrics registry)")
        from repro.obs.instrument import activated
        from repro.obs.registry import MetricsRegistry
        from repro.obs.status import StatusBoard, StatusServerThread, \
            board_active
        from repro.obs.trace import Recorder
        registry = MetricsRegistry()
        board = StatusBoard(registry)
        status_thread = StatusServerThread(board, port=args.status_port)
        try:
            status_thread.start()
        except RuntimeError as error:
            raise SystemExit(f"repro fleet: error: {error}")
        stack.callback(status_thread.stop)
        stack.enter_context(activated(Recorder(registry)))
        stack.enter_context(board_active(board))
        print(f"live ops: http://{status_thread.host}:{status_thread.port}/ "
              f"(/status, /metrics)", flush=True)
    try:
        try:
            result = run_fleet(fleet, max_workers=args.workers,
                               store_path=args.store, durable=args.durable)
        except (OSError, ValueError, StorageError) as error:
            raise SystemExit(f"repro fleet: error: {error}")
        mode = f"{args.workers} worker processes" if args.workers and args.workers > 1 \
            else "serial"
        if args.store:
            mode += f", tree served from {args.store}"
        if fleet.is_dynamic:
            mode += (f", {fleet.consistency} consistency, "
                     f"{fleet.update_rate:g} updates/s")
        if args.durable:
            mode += ", durable WAL"
        if fleet.is_networked:
            mode += f", loopback {fleet.transport} transport"
        if fleet.is_sharded:
            server_side = (f"{fleet.shards} shard(s) "
                           f"[{fleet.partitioner} partitioner]")
            if fleet.router_cache:
                server_side += " + router result cache"
        else:
            server_side = "1 shared server"
        report = format_fleet_report(
            result, title=f"Fleet simulation — {fleet.total_clients} clients, "
                          f"{len(fleet.groups)} groups, {server_side} ({mode})")
        if result.update_summary:
            report += _update_summary_line(result.update_summary)
        if result.net_summary:
            reconciled = ("reconciled exactly"
                          if result.net_summary.get("all_reconciled")
                          else "NOT reconciled")
            report += (f"\nLoopback bytes: client channels vs server ledgers "
                       f"{reconciled} across "
                       f"{len(result.net_summary.get('clients', []))} clients")
            latency = result.net_summary.get("latency")
            if latency and latency.get("queries"):
                report += "\n" + format_latency_line(latency)
        if status_thread is not None and args.status_linger > 0:
            # Scrapers (the CI smoke job, a browser on the dashboard) need
            # the endpoint to outlive a fast run; the final sections and
            # metrics stay scrapable until the linger expires.
            import time
            print(report)
            print(f"status server lingering for {args.status_linger:g}s "
                  f"(ctrl-c to stop)", flush=True)
            try:
                time.sleep(args.status_linger)
            except KeyboardInterrupt:
                pass
            return "status server stopped"
        return report
    finally:
        stack.close()


def _run_serve(args: argparse.Namespace) -> str:
    """Run a standalone wire-protocol server until interrupted."""
    import asyncio

    from repro.net.server import ReproServer
    from repro.sim.runner import build_shared_state

    base = SimulationConfig.scaled(query_count=args.queries,
                                   object_count=args.objects,
                                   seed=args.seed).with_overrides(
        dataset_name=args.dataset)
    if args.transport == "uds" and not args.path:
        raise SystemExit("repro serve: error: --transport uds requires "
                         "--path")

    async def main() -> None:
        shared = build_shared_state(base)
        try:
            server = ReproServer(shared.server, shared.size_model)
            if args.transport == "uds":
                where = await server.listen_uds(args.path)
                print(f"serving {base.object_count} objects on uds "
                      f"{where}", flush=True)
            else:
                host, port = await server.listen_tcp(args.host, args.port)
                print(f"serving {base.object_count} objects on tcp "
                      f"{host}:{port}", flush=True)
            status = None
            if args.status_port is not None:
                # The status server shares the wire server's loop; the
                # recorder feeds the /metrics registry from the query path.
                from repro.obs.instrument import activate
                from repro.obs.registry import MetricsRegistry
                from repro.obs.status import StatusBoard, StatusServer
                from repro.obs.trace import MetricsRecorder
                registry = MetricsRegistry()
                board = StatusBoard(registry)
                board.register("server", lambda: {
                    "dataset": base.dataset_name,
                    "objects": base.object_count,
                    "transport": args.transport,
                })
                board.register("net", lambda: {
                    "queue_depth": server.queue_depth(),
                    "connections": server.connection_ledgers(),
                })
                activate(MetricsRecorder(registry))
                status = StatusServer(board, port=args.status_port)
                shost, sport = await status.start()
                print(f"live ops: http://{shost}:{sport}/ "
                      f"(/status, /metrics)", flush=True)
            try:
                await asyncio.Event().wait()
            finally:
                if status is not None:
                    from repro.obs.instrument import deactivate as _deactivate
                    _deactivate()
                    await status.close()
                await server.close()
        finally:
            shared.tree.store.close()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        pass
    return "server stopped"


def _run_trace(args: argparse.Namespace) -> str:
    """Replay a seeded fleet under the recording instrument; print traces."""
    import dataclasses

    from repro.obs.instrument import activated
    from repro.obs.trace import Recorder, render_flame, spans_to_jsonl

    base = SimulationConfig.scaled(query_count=args.queries,
                                   object_count=args.objects,
                                   seed=args.seed).with_overrides(
        dataset_name=args.dataset)
    fleet = default_fleet(args.clients, base=base)
    if args.shards is not None:
        fleet = dataclasses.replace(fleet, shards=args.shards,
                                    partitioner=args.partitioner)
    if args.update_rate:
        fleet = dataclasses.replace(fleet, update_rate=args.update_rate,
                                    consistency="versioned")
    recorder = Recorder(timing=args.timing)
    try:
        with activated(recorder):
            run_fleet(fleet)
    except (OSError, ValueError) as error:
        raise SystemExit(f"repro trace: error: {error}")
    if args.jsonl:
        try:
            with open(args.jsonl, "w", encoding="utf-8") as handle:
                spans_to_jsonl(recorder.roots, handle)
        except OSError as error:
            raise SystemExit(f"repro trace: error: cannot write "
                             f"{args.jsonl}: {error}")
    report = render_flame(recorder.roots, limit=args.limit)
    if args.jsonl:
        report += (f"\n{len(recorder.roots)} trace line(s) written to "
                   f"{args.jsonl}")
    return report


def _run_figure(args: argparse.Namespace) -> str:
    module = _FIGURES[args.figure]
    config = config_from_args(args)
    if args.figure in ("table61", "overheads"):
        return module.render(module.run(config))
    if args.figure == "11":
        config = fig11.default_config(query_count=config.query_count).with_overrides(
            object_count=config.object_count)
        return module.render(module.run(config))
    return module.render(module.run(config))


def _run_params(args: argparse.Namespace) -> str:
    return table61.render(table61.run(config_from_args(args)))


def _run_bench(args: argparse.Namespace) -> str:
    from repro.perf import (
        compare_to_baseline, format_report, load_report, run_suite,
        scenario_descriptions, scenario_names, write_report,
    )
    if args.list:
        descriptions = scenario_descriptions()
        width = max(len(name) for name in descriptions)
        return "\n".join(f"{name.ljust(width)}  {description}"
                         for name, description in descriptions.items())
    if args.check and not args.baseline:
        # A gate that never ran must not look like a gate that passed.
        raise SystemExit("repro bench: error: --check requires --baseline")
    names = args.scenario or scenario_names()
    current = run_suite(names, scale=args.scale, repeats=args.repeats,
                        measure_allocations=not args.no_alloc,
                        label=args.label, progress=print)
    baseline = None
    comparison = None
    if args.baseline:
        baseline = load_report(args.baseline, section=args.baseline_section)
        comparison = compare_to_baseline(current, baseline,
                                         max_regression=args.max_regression)
    if args.output:
        write_report(args.output, current, baseline=baseline,
                     meta={"command": "repro bench", "scale": args.scale})
    report = format_report(current, comparison)
    if args.check and comparison is not None:
        failures = [e.name for e in comparison if e.regressed]
        mismatches = [e.name for e in comparison if e.fingerprint_matches is False]
        if failures or mismatches:
            print(report)
            problems = []
            if failures:
                problems.append(
                    f"wall-clock regression > {args.max_regression:.0%} in: "
                    + ", ".join(failures))
            if mismatches:
                problems.append("behaviour fingerprint mismatch in: "
                                + ", ".join(mismatches))
            raise SystemExit("repro bench: FAILED — " + "; ".join(problems))
    return report


def _run_persist_save_tree(args: argparse.Namespace) -> str:
    from repro.sim.runner import build_tree
    from repro.storage import StorageError, save_tree
    config = config_from_args(args)
    tree = build_tree(config)
    meta = {"dataset": config.dataset_name, "object_count": config.object_count,
            "dataset_seed": config.dataset_seed, "page_bytes": config.page_bytes,
            "mean_object_bytes": config.mean_object_bytes,
            "zipf_theta": config.zipf_theta}
    try:
        header = save_tree(tree, args.out, meta=meta)
    except (OSError, StorageError) as error:
        raise SystemExit(f"repro persist: error: {error}")
    return (f"saved {header['node_count']} node pages and "
            f"{header['object_count']} object pages "
            f"({header['page_size']} B each) to {args.out}")


def _run_persist_save_shards(args: argparse.Namespace) -> str:
    from repro.sharding import build_sharded_state, config_meta, save_sharded_state
    from repro.storage import StorageError
    config = config_from_args(args)
    try:
        state = build_sharded_state(config, args.shards,
                                    partitioner=args.partitioner)
        try:
            manifest = save_sharded_state(state, args.out,
                                          meta=config_meta(config))
        finally:
            state.close()
    except (OSError, ValueError, StorageError) as error:
        raise SystemExit(f"repro persist: error: {error}")
    counts = ", ".join(str(count) for count in manifest["objects_per_shard"])
    return (f"saved {manifest['shards']} shard store(s) "
            f"({manifest['partitioner']} partitioner; objects per shard: "
            f"{counts}) to {args.out}")


def _wal_info_lines(summary: dict) -> List[str]:
    """The write-ahead-log section of ``repro persist info``."""
    if not summary["wal_present"]:
        return ["  wal: none (checkpoint only)"]
    if summary["stale"]:
        return ["  wal: stale (superseded by a newer checkpoint; "
                "ignored on open, deleted by pack)"]
    lines = [f"  wal: {summary['wal_bytes']} bytes, "
             f"{summary['records']} committed record(s), "
             f"version {summary['committed_version']}"]
    if summary["tail_state"] == "torn":
        lines.append(f"  wal tail: torn ({summary['tail_bytes']} trailing "
                     f"bytes; auto-truncated on recovery)")
    elif summary["tail_state"] == "corrupt":
        lines.append(f"  wal tail: CORRUPT ({summary['tail_error']}); "
                     f"run 'repro persist recover --force'")
    lines.append(f"  dead pages: {summary['dead_pages']} of "
                 f"{summary['file_pages']} file pages "
                 f"({summary['live_pages']} live after recovery); "
                 f"reclaim with 'repro persist pack'")
    return lines


def _run_persist_info(args: argparse.Namespace) -> str:
    from repro.storage import StorageError, read_header, wal_summary
    try:
        header = read_header(args.path)
        summary = wal_summary(args.path)
    except (OSError, StorageError) as error:
        raise SystemExit(f"repro persist: error: {error}")
    lines = [f"{args.path}: rtree page store (format {header['format']})"]
    for key in ("page_size", "node_count", "object_count", "root_id", "height",
                "max_entries", "min_entries"):
        lines.append(f"  {key:>14}: {header[key]}")
    for key, value in sorted(header.get("meta", {}).items()):
        lines.append(f"  meta.{key}: {value}")
    lines.extend(_wal_info_lines(summary))
    return "\n".join(lines)


def _run_persist_verify(args: argparse.Namespace) -> str:
    """Validate the store's WAL, then diff the file backend against memory.

    The WAL check classifies the log (clean / torn / corrupt / stale) from
    a read-only scan.  A store *without* live WAL records additionally
    replays one APRO trace against both backends and asserts identical
    query results, per-query visited-page counts and logical page-read
    totals — the backend-invariance contract of :mod:`repro.storage`.  A
    store *with* committed records no longer matches the freshly built
    tree (that is the point of the log), so verify instead recovers it and
    checks the structural invariants of the recovered tree.
    """
    from repro.sim.runner import generate_trace, replay_store_trace
    from repro.storage import StorageError, load_tree, wal_path, wal_summary
    try:
        summary = wal_summary(args.path)
    except (OSError, StorageError) as error:
        raise SystemExit(f"repro persist: error: {error}")
    if summary["tail_state"] == "corrupt":
        raise SystemExit(
            f"repro persist: VERIFY FAILED — {wal_path(args.path)}: corrupt "
            f"WAL tail ({summary['tail_error']}); {summary['records']} "
            f"record(s) up to version {summary['committed_version']} are "
            f"intact; run 'repro persist recover --force' to truncate the "
            f"damage")
    if summary["wal_present"] and not summary["stale"] and summary["records"]:
        if summary["tail_state"] == "torn":
            # Scan-only verdict: actually opening the store would truncate
            # the torn tail, and verify must never modify the file.
            return (f"RECOVERABLE — {wal_path(args.path)} ends in a torn "
                    f"tail ({summary['tail_bytes']} bytes, a crash "
                    f"artefact); {summary['records']} committed record(s) "
                    f"up to version {summary['committed_version']} are "
                    f"intact and will replay on the next open")
        from repro.rtree.validation import assert_tree_valid
        try:
            tree = load_tree(args.path, recover=True)
            try:
                assert_tree_valid(tree)
                objects = len(tree.objects)
            finally:
                tree.store.close()
        except (OSError, AssertionError, StorageError) as error:
            raise SystemExit(f"repro persist: VERIFY FAILED — recovered "
                             f"store is invalid: {error}")
        return (f"OK — WAL clean: {summary['records']} committed record(s) "
                f"replay to version {summary['committed_version']}; "
                f"recovered tree valid ({objects} objects, "
                f"{summary['dead_pages']} dead pages reclaimable by pack)")
    config = config_from_args(args)
    trace = generate_trace(config)
    try:
        memory_rows, memory_reads, _ = replay_store_trace(config, trace)
        # A small 16-page buffer so the file path is genuinely exercised at
        # query time (a default-size buffer could serve everything warm).
        file_rows, file_reads, io_stats = replay_store_trace(
            config, trace, store_path=args.path, store_buffer_pages=16)
    except (OSError, StorageError) as error:
        raise SystemExit(f"repro persist: error: {error}")
    mismatches = [index for index, (m, f) in enumerate(zip(memory_rows, file_rows))
                  if m != f]
    if mismatches or memory_reads != file_reads:
        raise SystemExit(
            f"repro persist: VERIFY FAILED — per-query mismatches at "
            f"{mismatches[:10]}, logical reads {memory_reads} (memory) vs "
            f"{file_reads} (file)")
    note = " (stale WAL present; pack or the next open discards it)" \
        if summary["stale"] else ""
    return (f"OK — {len(trace)} queries identical on both backends; "
            f"{file_reads} logical page reads, "
            f"{io_stats['file_reads']} physical file reads, "
            f"{io_stats['buffer_hits']} buffer hits{note}")


def _run_persist_recover(args: argparse.Namespace) -> str:
    """Repair a store's WAL in place: truncate torn/corrupt tails."""
    import os
    from repro.storage import StorageError, repair_wal, wal_path
    log = wal_path(args.path)
    if not os.path.exists(log):
        return f"{args.path}: no write-ahead log; nothing to recover"
    try:
        scan = repair_wal(log, force=args.force)
    except (OSError, StorageError) as error:
        raise SystemExit(f"repro persist: error: {error}")
    if not os.path.exists(log):
        return (f"{log}: unreadable log header; log removed, store falls "
                f"back to its checkpoint")
    dropped = scan.tail_bytes
    verdict = (f"{log}: {len(scan.records)} committed record(s) kept "
               f"(version {scan.committed_version})")
    if dropped:
        verdict += (f"; {dropped} {scan.tail_state} tail byte(s) truncated"
                    + (" (forced)" if scan.tail_state == "corrupt" else ""))
    else:
        verdict += "; tail already clean"
    return verdict


def _run_persist_pack(args: argparse.Namespace) -> str:
    """Fold WALs into fresh checkpoints (single store or shard directory)."""
    import os
    from repro.sharding import pack_shards
    from repro.storage import StorageError, pack
    try:
        if os.path.isdir(args.path):
            per_shard = pack_shards(args.path)
            lines = [f"packed {len(per_shard)} shard store(s) in {args.path}:"]
            lines.extend(
                f"  {name}: {info['records_folded']} record(s) folded, "
                f"{info['dead_pages_reclaimed']} dead page(s) reclaimed, "
                f"version {info['committed_version']}"
                for name, info in per_shard.items())
            return "\n".join(lines)
        info = pack(args.path)
    except (OSError, StorageError) as error:
        raise SystemExit(f"repro persist: error: {error}")
    return (f"packed {args.path}: {info['records_folded']} WAL record(s) "
            f"({info['wal_bytes']} bytes) folded into a fresh checkpoint at "
            f"version {info['committed_version']}; "
            f"{info['dead_pages_reclaimed']} dead page(s) reclaimed "
            f"({info['pages_before']} -> {info['pages_after']} node pages, "
            f"{info['objects']} objects)")


def _run_lint(args: argparse.Namespace) -> str:
    from repro.analysis import (
        lint_paths, render_json, render_text, rule_catalogue,
    )
    if args.list_rules:
        catalogue = rule_catalogue()
        width = max(len(rule) for rule, _ in catalogue)
        return "\n".join(f"{rule.ljust(width)}  {title}"
                         for rule, title in catalogue)
    rules = tuple(rule.strip().upper() for rule in args.rules.split(",")
                  if rule.strip()) if args.rules else ()
    known = {rule for rule, _ in rule_catalogue()}
    unknown = sorted(set(rules) - known)
    if unknown:
        raise SystemExit(f"repro lint: error: unknown rule(s) "
                         f"{', '.join(unknown)} (see --list-rules)")
    paths = args.paths or ["src"]
    try:
        findings, checked = lint_paths(paths, rules=rules)
    except OSError as error:
        raise SystemExit(f"repro lint: error: {error}")
    enabled = rules or known
    if args.output:
        try:
            with open(args.output, "w", encoding="utf-8") as handle:
                handle.write(render_json(findings, checked, rules=enabled))
                handle.write("\n")
        except OSError as error:
            raise SystemExit(f"repro lint: error: cannot write "
                             f"{args.output}: {error}")
    if args.format == "json":
        report = render_json(findings, checked, rules=enabled)
    else:
        report = render_text(findings, checked)
    if findings:
        # Non-zero exit so the CI lint job gates on findings, but the full
        # report still reaches stdout first.
        print(report)
        raise SystemExit(1)
    return report


_EXAMPLES = {
    "compare": """\
examples:
  repro compare --queries 250 --objects 4000 --models PAG,SEM,APRO
  repro compare --mobility DIR --cache 0.02 --replacement LRU
  repro persist save-tree --out server.rpro && repro compare --store server.rpro
""",
    "fleet": """\
examples:
  repro fleet --clients 50 --queries 40 --workers 4
  repro fleet --group walkers:30:RAN:APRO --group vans:20:DIR:APRO:0.005:8
  repro fleet --clients 8 --halt-after 100 --session-dir ./session
  repro fleet --resume ./session
  repro fleet --clients 8 --update-rate 0.05 --consistency versioned
  repro fleet --clients 8 --update-rate 0.05 --consistency ttl --ttl 200
  repro fleet --clients 8 --update-rate 0.05 --consistency versioned --store server.rpro --durable
  repro fleet --clients 12 --shards 4 --partitioner grid
  repro fleet --clients 12 --shards 4 --router-cache --router-cache-bytes 131072
  repro persist save-shards --out ./shards --shards 4 && repro fleet --shards 4 --store ./shards
  repro fleet --clients 8 --transport uds
  repro fleet --clients 8 --transport tcp --consistency versioned --update-rate 0.05
  repro fleet --clients 20 --shards 4 --router-cache --status-port 8765
  repro fleet --clients 8 --status-port 0 --status-linger 30
""",
    "serve": """\
examples:
  repro serve --transport tcp --port 7007
  repro serve --transport uds --path /tmp/repro.sock --objects 8000
  repro serve --transport tcp --port 7007 --status-port 8765
""",
    "trace": """\
examples:
  repro trace --clients 6 --queries 15
  repro trace --shards 4 --partitioner grid --limit 64
  repro trace --update-rate 0.05 --jsonl trace.jsonl
  repro trace --timing
""",
    "figure": """\
examples:
  repro figure 6 --queries 250
  repro figure 10 --mobility DIR
  repro figure table61 --paper-scale
""",
    "params": """\
examples:
  repro params
  repro params --paper-scale
""",
    "bench": """\
examples:
  repro bench
  repro bench --list
  repro bench --scale smoke --repeats 1
  repro bench --baseline BENCH_PR2.json --check
  repro bench --scenario storage_paged --scenario warm_restart --scale smoke
""",
    "persist": """\
examples:
  repro persist save-tree --out server.rpro --objects 4000
  repro persist save-shards --out ./shards --shards 4 --partitioner kd
  repro persist info server.rpro
  repro persist verify server.rpro --queries 100
  repro persist recover server.rpro
  repro persist pack server.rpro
  repro persist pack ./shards
""",
    "lint": """\
examples:
  repro lint
  repro lint src/repro/core src/repro/rtree
  repro lint --rules DET01,DET02,FLT01
  repro lint --format json --output lint-findings.json
  repro lint --list-rules
""",
}


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Proactive caching for spatial queries (ICDE 2005) — simulator CLI",
        epilog="Full documentation: docs/cli.md")
    subparsers = parser.add_subparsers(dest="command", required=True)

    compare = subparsers.add_parser(
        "compare", help="compare caching models on one trace",
        epilog=_EXAMPLES["compare"],
        formatter_class=argparse.RawDescriptionHelpFormatter)
    compare.add_argument("--models", default="PAG,SEM,APRO",
                         help="comma-separated models (PAG, SEM, APRO, FPRO, CPRO)")
    compare.add_argument("--store", default=None, metavar="PATH",
                         help="serve the R-tree from this .rpro page store "
                              "(see 'repro persist save-tree')")
    _add_config_arguments(compare)
    compare.set_defaults(handler=_run_compare)

    fleet = subparsers.add_parser(
        "fleet", help="simulate many heterogeneous clients against one shared server",
        epilog=_EXAMPLES["fleet"],
        formatter_class=argparse.RawDescriptionHelpFormatter)
    fleet.add_argument("--clients", type=int, default=12,
                       help="total clients, split over the default heterogeneous "
                            "groups when no --group is given (default: 12)")
    fleet.add_argument("--group", action="append", type=parse_group_spec, default=[],
                       metavar="NAME:COUNT[:MOBILITY[:MODEL[:CACHE[:SPEED]]]]",
                       help="explicit client group (repeatable); overrides --clients")
    fleet.add_argument("--queries", type=int, default=40,
                       help="queries per client (default: 40)")
    fleet.add_argument("--objects", type=int, default=4_000,
                       help="number of data objects (default: 4000)")
    fleet.add_argument("--dataset", choices=("NE", "RD", "UNIFORM"), default="NE",
                       help="synthetic dataset family (default: NE)")
    fleet.add_argument("--cache", type=float, default=0.01,
                       help="base cache fraction, groups may scale it (default: 0.01)")
    fleet.add_argument("--replacement", default="GRD3",
                       help="replacement policy for proactive clients (default: GRD3)")
    fleet.add_argument("--seed", type=int, default=7, help="dataset seed (default: 7)")
    fleet.add_argument("--fleet-seed", type=int, default=101,
                       help="seed decorrelating per-client traces (default: 101)")
    fleet.add_argument("--workers", type=int, default=1,
                       help="worker processes; >1 shards the fleet (default: 1)")
    fleet.add_argument("--store", default=None, metavar="PATH",
                       help="serve the shared R-tree from this .rpro page "
                            "store (with --shards: a shard-store directory "
                            "from 'repro persist save-shards')")
    fleet.add_argument("--shards", type=int, default=None, metavar="N",
                       help="run the fleet against N spatial shards behind "
                            "the scatter-gather router (default: one "
                            "unsharded server; --shards 1 is byte-identical "
                            "to it)")
    fleet.add_argument("--partitioner", choices=("grid", "kd"), default="grid",
                       help="spatial partitioner for --shards: uniform grid "
                            "cells or kd median splits (default: grid)")
    fleet.add_argument("--router-cache", action="store_true",
                       help="attach the router-level partition-result cache "
                            "(requires --shards): repeated queries skip "
                            "shards memoised as empty for their canonical "
                            "grid variants, result-identically")
    fleet.add_argument("--router-cache-bytes", type=int, default=None,
                       metavar="N",
                       help="fact-store budget for --router-cache in bytes "
                            "(default: 65536; implies --router-cache)")
    fleet.add_argument("--update-rate", type=float, default=0.0, metavar="RATE",
                       help="server-side dataset updates per simulated second "
                            "(insert/delete/modify mix; default: 0 = static)")
    fleet.add_argument("--consistency", choices=("versioned", "ttl", "none"),
                       default="none",
                       help="cache-consistency protocol for dynamic fleets: "
                            "version-stamped lazy validation, a TTL baseline "
                            "or none (default: none)")
    fleet.add_argument("--ttl", type=float, default=120.0, metavar="SECONDS",
                       help="item lifetime for --consistency ttl, in "
                            "simulated seconds (default: 120)")
    fleet.add_argument("--durable", action="store_true",
                       help="commit every dataset-update batch to the "
                            "store's write-ahead log so the run is "
                            "crash-safe on disk (requires --store and a "
                            "dynamic fleet)")
    fleet.add_argument("--transport", choices=("inproc", "uds", "tcp"),
                       default="inproc",
                       help="where the shared server lives: in the same "
                            "process (default) or behind a loopback UNIX / "
                            "TCP socket speaking the repro.net wire "
                            "protocol (byte-identical results)")
    fleet.add_argument("--halt-after", type=int, default=None, metavar="N",
                       help="stop after N global events and persist the "
                            "session (requires --session-dir)")
    fleet.add_argument("--session-dir", default=None, metavar="DIR",
                       help="directory the halted session is saved to")
    fleet.add_argument("--resume", default=None, metavar="DIR",
                       help="resume a halted session from DIR and run it to "
                            "completion (ignores the other fleet options)")
    fleet.add_argument("--status-port", type=int, default=None, metavar="PORT",
                       help="serve the live ops dashboard (/, /status, "
                            "/metrics) on 127.0.0.1:PORT while the run "
                            "executes (serial runs only; 0 picks a free "
                            "port)")
    fleet.add_argument("--status-linger", type=float, default=0.0,
                       metavar="SECONDS",
                       help="keep the status server up this long after the "
                            "run completes, so scrapers can read the final "
                            "sections (default: 0)")
    fleet.set_defaults(handler=_run_fleet)

    serve = subparsers.add_parser(
        "serve", help="run a standalone wire-protocol server",
        epilog=_EXAMPLES["serve"],
        formatter_class=argparse.RawDescriptionHelpFormatter)
    serve.add_argument("--transport", choices=("uds", "tcp"), default="tcp",
                       help="listen on a UNIX socket (--path) or a TCP "
                            "port (default: tcp)")
    serve.add_argument("--path", default=None, metavar="SOCKET",
                       help="UNIX socket path for --transport uds")
    serve.add_argument("--host", default="127.0.0.1",
                       help="TCP bind address (default: 127.0.0.1)")
    serve.add_argument("--port", type=int, default=0,
                       help="TCP port; 0 picks a free one and prints it "
                            "(default: 0)")
    serve.add_argument("--queries", type=int, default=400,
                       help="query-count knob of the generating config "
                            "(affects adaptation defaults only; default: "
                            "400)")
    serve.add_argument("--objects", type=int, default=4_000,
                       help="number of data objects (default: 4000)")
    serve.add_argument("--dataset", choices=("NE", "RD", "UNIFORM"),
                       default="NE",
                       help="synthetic dataset family (default: NE)")
    serve.add_argument("--seed", type=int, default=7,
                       help="dataset seed (default: 7)")
    serve.add_argument("--status-port", type=int, default=None, metavar="PORT",
                       help="also serve the live ops dashboard (/, /status, "
                            "/metrics) on 127.0.0.1:PORT (0 picks a free "
                            "port)")
    serve.set_defaults(handler=_run_serve)

    trace = subparsers.add_parser(
        "trace", help="replay a seeded fleet under the tracer and print a "
                      "flame view",
        epilog=_EXAMPLES["trace"],
        formatter_class=argparse.RawDescriptionHelpFormatter)
    trace.add_argument("--clients", type=int, default=6,
                       help="total clients over the default heterogeneous "
                            "groups (default: 6)")
    trace.add_argument("--queries", type=int, default=15,
                       help="queries per client (default: 15)")
    trace.add_argument("--objects", type=int, default=2_000,
                       help="number of data objects (default: 2000)")
    trace.add_argument("--dataset", choices=("NE", "RD", "UNIFORM"),
                       default="NE",
                       help="synthetic dataset family (default: NE)")
    trace.add_argument("--seed", type=int, default=7,
                       help="dataset seed (default: 7)")
    trace.add_argument("--shards", type=int, default=None, metavar="N",
                       help="trace a sharded fleet behind the "
                            "scatter-gather router")
    trace.add_argument("--partitioner", choices=("grid", "kd"),
                       default="grid",
                       help="spatial partitioner for --shards "
                            "(default: grid)")
    trace.add_argument("--update-rate", type=float, default=0.0,
                       metavar="RATE",
                       help="dataset updates per simulated second under "
                            "versioned consistency (default: 0 = static)")
    trace.add_argument("--timing", action="store_true",
                       help="record wall_elapsed_ms on spans (wall-clock: "
                            "breaks byte-stability of the export)")
    trace.add_argument("--jsonl", default=None, metavar="PATH",
                       help="write one JSON line per traced query here")
    trace.add_argument("--limit", type=int, default=48,
                       help="span paths shown in the flame view "
                            "(default: 48)")
    trace.set_defaults(handler=_run_trace)

    figure = subparsers.add_parser(
        "figure", help="regenerate a figure from the paper",
        epilog=_EXAMPLES["figure"],
        formatter_class=argparse.RawDescriptionHelpFormatter)
    figure.add_argument("figure", choices=sorted(_FIGURES),
                        help="which figure/table to regenerate")
    _add_config_arguments(figure)
    figure.set_defaults(handler=_run_figure)

    params = subparsers.add_parser(
        "params", help="print the Table 6.1 parameter sheet",
        epilog=_EXAMPLES["params"],
        formatter_class=argparse.RawDescriptionHelpFormatter)
    _add_config_arguments(params)
    params.set_defaults(handler=_run_params)

    persist = subparsers.add_parser(
        "persist", help="checkpoint / inspect / verify disk-backed page stores",
        epilog=_EXAMPLES["persist"],
        formatter_class=argparse.RawDescriptionHelpFormatter)
    persist_actions = persist.add_subparsers(dest="action", required=True)

    save_tree = persist_actions.add_parser(
        "save-tree", help="build the configured dataset's R-tree and save it")
    save_tree.add_argument("--out", required=True, metavar="PATH",
                           help="output .rpro file")
    _add_config_arguments(save_tree)
    save_tree.set_defaults(handler=_run_persist_save_tree)

    save_shards = persist_actions.add_parser(
        "save-shards",
        help="partition the configured dataset and save one .rpro per shard")
    save_shards.add_argument("--out", required=True, metavar="DIR",
                             help="output shard-store directory")
    save_shards.add_argument("--shards", type=int, required=True, metavar="N",
                             help="number of spatial shards")
    save_shards.add_argument("--partitioner", choices=("grid", "kd"),
                             default="grid",
                             help="spatial partitioner (default: grid)")
    _add_config_arguments(save_shards)
    save_shards.set_defaults(handler=_run_persist_save_shards)

    info = persist_actions.add_parser("info", help="print a page store's header")
    info.add_argument("path", help="an .rpro file")
    info.set_defaults(handler=_run_persist_info)

    verify = persist_actions.add_parser(
        "verify", help="validate the WAL and assert the file backend "
                       "matches the in-memory backend")
    verify.add_argument("path", help="an .rpro file written from this configuration")
    _add_config_arguments(verify)
    verify.set_defaults(handler=_run_persist_verify)

    recover = persist_actions.add_parser(
        "recover", help="repair a store's write-ahead log (truncate a "
                        "torn or corrupt tail)")
    recover.add_argument("path", help="an .rpro file whose .wal needs repair")
    recover.add_argument("--force", action="store_true",
                         help="also truncate a CORRUPT tail (in-place "
                              "damage: records past the damage are lost); "
                              "torn crash tails never need this")
    recover.set_defaults(handler=_run_persist_recover)

    pack = persist_actions.add_parser(
        "pack", help="fold the write-ahead log into a fresh checkpoint, "
                     "reclaiming dead pages")
    pack.add_argument("path", help="an .rpro file, or a shard-store "
                                   "directory to pack shard by shard")
    pack.set_defaults(handler=_run_persist_pack)

    bench = subparsers.add_parser(
        "bench", help="run the perf-regression scenario suite",
        epilog=_EXAMPLES["bench"],
        formatter_class=argparse.RawDescriptionHelpFormatter)
    bench.add_argument("--list", action="store_true",
                       help="list the registered scenarios with one-line "
                            "descriptions and exit")
    bench.add_argument("--scenario", action="append", default=[],
                       help="scenario to run (repeatable; default: all)")
    bench.add_argument("--scale", choices=("default", "smoke"), default="default",
                       help="scenario scale: committed-baseline 'default' or "
                            "CI-sized 'smoke' (default: default)")
    bench.add_argument("--repeats", type=int, default=3,
                       help="timed repeats per scenario; best-of is reported "
                            "(default: 3)")
    bench.add_argument("--output", default=None, metavar="PATH",
                       help="write the BENCH_*.json report here")
    bench.add_argument("--baseline", default=None, metavar="PATH",
                       help="committed BENCH_*.json to compare against")
    bench.add_argument("--baseline-section", choices=("current", "baseline"),
                       default="current",
                       help="which section of the baseline file to compare "
                            "against (default: current)")
    bench.add_argument("--max-regression", type=float, default=0.25,
                       help="allowed fractional wall-clock growth before "
                            "--check fails (default: 0.25)")
    bench.add_argument("--check", action="store_true",
                       help="exit non-zero on regression or fingerprint mismatch")
    bench.add_argument("--no-alloc", action="store_true",
                       help="skip the tracemalloc instrumentation pass")
    bench.add_argument("--label", default="",
                       help="free-form label stored in the report")
    bench.set_defaults(handler=_run_bench)

    lint = subparsers.add_parser(
        "lint", help="run the determinism & invariant linter over the tree",
        epilog=_EXAMPLES["lint"],
        formatter_class=argparse.RawDescriptionHelpFormatter)
    lint.add_argument("paths", nargs="*", metavar="PATH",
                      help="files or directories to lint (default: src)")
    lint.add_argument("--rules", default=None, metavar="R1,R2",
                      help="comma-separated rule ids to run (default: all; "
                           "see --list-rules)")
    lint.add_argument("--format", choices=("text", "json"), default="text",
                      help="report format on stdout (default: text)")
    lint.add_argument("--output", default=None, metavar="PATH",
                      help="also write the JSON findings document here "
                           "(regardless of --format; the CI artifact)")
    lint.add_argument("--list-rules", action="store_true",
                      help="print the rule catalogue and exit")
    lint.set_defaults(handler=_run_lint)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        print(args.handler(args))
    except BrokenPipeError:
        # Output piped into a pager/head that closed early — not an error.
        return 0
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
