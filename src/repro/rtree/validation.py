"""Structural invariant checks for R-trees (the dynamic-update safety net).

With server-side updates (:mod:`repro.updates`) the R-tree is no longer
write-once: every insert or delete reshapes nodes, splits pages and condenses
underfull paths.  :func:`assert_tree_valid` is the single checker the test
suites (and debugging sessions) apply after every mutation.  It walks the
whole tree from the root and asserts, independently of
:meth:`~repro.rtree.tree.RTree.validate`'s internal bookkeeping:

* **MBR containment** — every entry's MBR covers its child node's MBR
  (or the referenced object's MBR at leaf level);
* **fanout bounds** — no node exceeds ``max_entries``; non-root nodes hold
  at least one entry (``check_min_fill=True`` additionally enforces the
  ``min_entries`` floor, meaningful for dynamically built trees);
* **leaf depth uniformity** — every leaf sits at level 0 and the same root
  distance (the balanced-tree invariant);
* **parent links** — each child's ``parent_id`` names the node whose entry
  references it, and the root has none;
* **object-table coverage** — the leaf entries enumerate exactly the ids in
  ``tree.objects``, with no orphan pages left in the store.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Set

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.rtree.tree import RTree


def assert_tree_valid(tree: "RTree", check_min_fill: bool = False) -> None:
    """Raise ``AssertionError`` unless every structural invariant holds.

    Safe to call after any mutation (and on freshly bulk-loaded or loaded
    trees); an empty tree (root with no entries) is valid.
    """
    root = tree.store.peek(tree.root_id)
    assert root.parent_id is None, "root must not have a parent"
    assert root.level == tree.height - 1, (
        f"root level {root.level} disagrees with height {tree.height}")
    seen_objects: List[int] = []
    seen_nodes: Set[int] = set()
    depths: Set[int] = set()
    stack = [(tree.root_id, None, 0)]
    while stack:
        node_id, expected_parent, depth = stack.pop()
        node = tree.store.peek(node_id)
        assert node_id not in seen_nodes, f"node {node_id} reachable twice"
        seen_nodes.add(node_id)
        assert node.parent_id == expected_parent, (
            f"node {node_id}: parent link {node.parent_id}, "
            f"expected {expected_parent}")
        is_root = node_id == tree.root_id
        assert node.fanout <= tree.max_entries, (
            f"node {node_id}: fanout {node.fanout} > max {tree.max_entries}")
        if not is_root:
            floor = tree.min_entries if check_min_fill else 1
            assert node.fanout >= floor, (
                f"node {node_id}: fanout {node.fanout} < {floor}")
        if node.is_leaf:
            depths.add(depth)
            assert node.level == 0, f"leaf {node_id} at level {node.level}"
            for entry in node.entries:
                assert entry.is_leaf_entry, (
                    f"leaf {node_id} holds a child pointer")
                record = tree.objects.get(entry.object_id)
                assert record is not None, (
                    f"leaf {node_id} references unknown object "
                    f"{entry.object_id}")
                assert entry.mbr.contains(record.mbr), (
                    f"leaf {node_id}: entry MBR does not cover object "
                    f"{entry.object_id}")
                seen_objects.append(entry.object_id)
            continue
        for entry in node.entries:
            assert not entry.is_leaf_entry, (
                f"inner node {node_id} holds an object entry")
            assert entry.child_id in tree.store, (
                f"node {node_id} references missing page {entry.child_id}")
            child = tree.store.peek(entry.child_id)
            assert child.level == node.level - 1, (
                f"node {node_id} (level {node.level}) has child "
                f"{child.node_id} at level {child.level}")
            assert entry.mbr.contains(child.mbr()), (
                f"node {node_id}: entry MBR does not cover child "
                f"{child.node_id}")
            stack.append((entry.child_id, node_id, depth + 1))
    assert len(depths) <= 1, f"leaves at different depths: {sorted(depths)}"
    assert sorted(seen_objects) == sorted(tree.objects), (
        "leaf entries must cover exactly the object table")
    stored = set(tree.store.node_ids())
    assert seen_nodes == stored, (
        f"orphan pages in the store: {sorted(stored - seen_nodes)}; "
        f"reachable-but-missing: {sorted(seen_nodes - stored)}")
