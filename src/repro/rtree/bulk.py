"""Sort-Tile-Recursive (STR) bulk loading.

Building the NE-like / RD-like datasets object-by-object through the dynamic
R* insertion path is needlessly slow for large simulations, so the
simulation harness bulk-loads with STR (Leutenegger et al.).  The resulting
tree exposes exactly the same paged structure, so everything downstream
(caching, query processing, partition trees) is agnostic to how the tree was
built.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Iterable, List, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.storage.backend import StorageBackend

from repro.rtree.entry import Entry, ObjectRecord
from repro.rtree.node import Node
from repro.rtree.sizes import SizeModel
from repro.rtree.tree import RTree


def bulk_load_str(records: Iterable[ObjectRecord],
                  size_model: Optional[SizeModel] = None,
                  max_entries: Optional[int] = None,
                  fill_factor: float = 0.9,
                  store: Optional["StorageBackend"] = None) -> RTree:
    """Bulk-load an R-tree with the STR algorithm.

    Parameters
    ----------
    records:
        The data objects to index.
    size_model:
        Byte-size model (determines node capacity unless ``max_entries``).
    max_entries:
        Optional explicit fanout.
    fill_factor:
        Fraction of the node capacity actually used per node (0 < f <= 1).
    store:
        Optional empty storage backend to build the tree on; the sharding
        layer passes stores whose id counter starts at the shard's offset so
        every shard's page ids live in a disjoint global range.

    Returns
    -------
    RTree
        A fully-built, height-balanced tree.
    """
    records = list(records)
    tree = RTree(size_model=size_model, max_entries=max_entries, store=store)
    if not records:
        return tree
    if not 0.0 < fill_factor <= 1.0:
        raise ValueError("fill_factor must be in (0, 1]")

    tree.objects = {record.object_id: record for record in records}
    if len(tree.objects) != len(records):
        raise ValueError("duplicate object ids in bulk load input")
    capacity = max(2, int(tree.max_entries * fill_factor))

    # Reset the store: drop the empty root allocated by the constructor.
    tree.store.free(tree.root_id)

    entries = [Entry(mbr=record.mbr, object_id=record.object_id) for record in records]
    level = 0
    node_entries = _pack_level(tree, entries, level, capacity, leaf=True)
    while len(node_entries) > 1:
        level += 1
        node_entries = _pack_level(tree, node_entries, level, capacity, leaf=False)

    root_entry = node_entries[0]
    tree.root_id = root_entry.child_id
    tree.store.peek(tree.root_id).parent_id = None
    tree.height = level + 1
    return tree


def _pack_level(tree: RTree, entries: Sequence[Entry], level: int,
                capacity: int, leaf: bool) -> List[Entry]:
    """Pack ``entries`` into nodes at ``level``; return entries for the next level."""
    entries = sorted(entries, key=lambda e: e.mbr.center().x)
    count = len(entries)
    node_count = math.ceil(count / capacity)
    slice_count = max(1, math.ceil(math.sqrt(node_count)))
    per_slice = math.ceil(count / slice_count)

    parent_entries: List[Entry] = []
    for slice_start in range(0, count, per_slice):
        vertical = sorted(entries[slice_start:slice_start + per_slice],
                          key=lambda e: e.mbr.center().y)
        for start in range(0, len(vertical), capacity):
            group = vertical[start:start + capacity]
            node = tree.store.allocate(level=level)
            node.entries = list(group)
            if not leaf:
                for entry in group:
                    tree.store.peek(entry.child_id).parent_id = node.node_id
            parent_entries.append(Entry(mbr=node.mbr(), child_id=node.node_id))
    return parent_entries
