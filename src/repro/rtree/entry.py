"""R-tree entries and the data-object record they ultimately point to."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro._compat import DATACLASS_SLOTS
from repro.geometry import Point, Rect


@dataclass(frozen=True, **DATACLASS_SLOTS)
class ObjectRecord:
    """A spatial data object stored in the database.

    The paper's datasets contain postal zones (NE) and road segments (RD);
    both are represented here by their MBR plus an opaque payload size in
    bytes (object sizes follow a Zipf distribution with a 10 KB mean).
    """

    object_id: int
    mbr: Rect
    size_bytes: int

    @property
    def centroid(self) -> Point:
        """Centroid of the object's MBR."""
        return self.mbr.center()


@dataclass(frozen=True, **DATACLASS_SLOTS)
class Entry:
    """An entry ``(MBR, p)`` inside an R-tree node.

    ``child_id`` is the page id of the child node for intermediate entries,
    and ``object_id`` identifies the data object for leaf entries.  Exactly
    one of the two is set.
    """

    mbr: Rect
    child_id: Optional[int] = None
    object_id: Optional[int] = None

    def __post_init__(self) -> None:
        if (self.child_id is None) == (self.object_id is None):
            raise ValueError("an entry must reference either a child node or an object")

    @property
    def is_leaf_entry(self) -> bool:
        """True when the entry points at a data object rather than a node."""
        return self.object_id is not None

    def key(self) -> str:
        """A stable identity string (used by caches and tests)."""
        if self.is_leaf_entry:
            return f"obj:{self.object_id}"
        return f"node:{self.child_id}"
