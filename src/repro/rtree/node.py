"""R-tree nodes (pages)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro._compat import DATACLASS_SLOTS
from repro.geometry import Rect
from repro.rtree.entry import Entry


@dataclass(**DATACLASS_SLOTS)
class Node:
    """A single R-tree node, i.e. one page of the index.

    ``level`` is 0 for leaf nodes (whose entries reference data objects) and
    grows towards the root.  ``node_id`` is the page address; proactive
    caching keys cached index snapshots by it.
    """

    node_id: int
    level: int
    entries: List[Entry] = field(default_factory=list)
    parent_id: Optional[int] = None

    @property
    def is_leaf(self) -> bool:
        """True for level-0 nodes whose entries point at data objects."""
        return self.level == 0

    @property
    def fanout(self) -> int:
        """Number of entries currently stored in the node."""
        return len(self.entries)

    def mbr(self) -> Rect:
        """Minimum bounding rectangle of all entries in the node."""
        if not self.entries:
            raise ValueError(f"node {self.node_id} has no entries")
        return Rect.bounding(entry.mbr for entry in self.entries)

    def add(self, entry: Entry) -> None:
        """Append an entry to the node."""
        self.entries.append(entry)

    def remove_entry_for_child(self, child_id: int) -> Entry:
        """Remove and return the entry that references ``child_id``."""
        for index, entry in enumerate(self.entries):
            if entry.child_id == child_id:
                return self.entries.pop(index)
        raise KeyError(f"node {self.node_id} has no entry for child {child_id}")

    def replace_entry_for_child(self, child_id: int, new_entry: Entry) -> None:
        """Replace the entry that references ``child_id`` with ``new_entry``."""
        for index, entry in enumerate(self.entries):
            if entry.child_id == child_id:
                self.entries[index] = new_entry
                return
        raise KeyError(f"node {self.node_id} has no entry for child {child_id}")

    def copy(self) -> "Node":
        """A shallow snapshot of the node (entries are immutable)."""
        return Node(self.node_id, self.level, list(self.entries), self.parent_id)
