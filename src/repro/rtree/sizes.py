"""Byte-size model for index entries, nodes, objects and wire messages.

The paper's evaluation is entirely in terms of bytes travelling over a
384 Kbps channel and bytes occupying a client cache, so the reproduction
needs a single consistent accounting of "how big is an entry / node /
object / query / remainder query".  This module is that single source of
truth; every cache and the network model consult it.

Defaults follow the paper: 4 KB pages, 10 KB average objects.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._compat import DATACLASS_SLOTS


@dataclass(frozen=True, **DATACLASS_SLOTS)
class SizeModel:
    """Byte sizes of the building blocks of the system.

    Attributes
    ----------
    page_bytes:
        Capacity of one R-tree node (disk page).  The paper uses 4 KB.
    coordinate_bytes:
        Bytes per coordinate; an MBR stores four coordinates.
    pointer_bytes:
        Bytes per child pointer / object id.
    query_header_bytes:
        Fixed overhead of any query message (type tag, client id, ...).
    object_id_bytes:
        Bytes to name one object on the uplink (page caching sends these).
    """

    page_bytes: int = 4096
    coordinate_bytes: int = 8
    pointer_bytes: int = 4
    query_header_bytes: int = 16
    object_id_bytes: int = 8

    # ------------------------------------------------------------------ #
    # index sizes
    # ------------------------------------------------------------------ #
    @property
    def entry_bytes(self) -> int:
        """Bytes of one R-tree entry: an MBR plus a pointer."""
        return 4 * self.coordinate_bytes + self.pointer_bytes

    @property
    def node_capacity(self) -> int:
        """Maximum number of entries per node given the page size."""
        return max(2, self.page_bytes // self.entry_bytes)

    def node_bytes(self, entry_count: int) -> int:
        """Bytes of a (possibly partial / compact) node with ``entry_count`` entries."""
        return self.pointer_bytes + entry_count * self.entry_bytes

    def super_entry_bytes(self) -> int:
        """Bytes of a super entry: an MBR plus the ``(node, code)`` designator."""
        return 4 * self.coordinate_bytes + 2 * self.pointer_bytes

    # ------------------------------------------------------------------ #
    # query / message sizes
    # ------------------------------------------------------------------ #
    def point_bytes(self) -> int:
        """Bytes of an encoded point."""
        return 2 * self.coordinate_bytes

    def rect_bytes(self) -> int:
        """Bytes of an encoded rectangle."""
        return 4 * self.coordinate_bytes

    def query_descriptor_bytes(self, parameter_count: int = 1) -> int:
        """Bytes of a query descriptor with ``parameter_count`` scalar parameters."""
        return self.query_header_bytes + self.rect_bytes() + parameter_count * self.coordinate_bytes

    def id_list_bytes(self, count: int) -> int:
        """Bytes needed to name ``count`` objects (page-caching uplink)."""
        return count * self.object_id_bytes

    def frontier_entry_bytes(self) -> int:
        """Bytes of one priority-queue entry shipped inside a remainder query."""
        return 4 * self.coordinate_bytes + 2 * self.pointer_bytes
