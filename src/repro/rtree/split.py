"""Node-splitting heuristics.

Two splitters are provided:

* :func:`rstar_split` — the R*-tree split (Beckmann et al. 1990): choose the
  split axis by minimum margin sum, then the split index by minimum overlap
  (ties broken by minimum total area).  This is used both by the dynamic
  insertion path of :class:`~repro.rtree.tree.RTree` and — crucially for the
  paper — by :class:`~repro.rtree.partition_tree.PartitionTree`, which
  recursively applies the same heuristic to build the binary partition tree
  of every node ("The partitioning uses the R-tree node splitting algorithm
  to assure minimal overlap", Section 4.2).
* :func:`quadratic_split` — Guttman's quadratic split, kept as a baseline and
  for tests comparing tree quality.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.geometry import Rect
from repro.rtree.entry import Entry


def _group_mbr(entries: Sequence[Entry]) -> Rect:
    return Rect.bounding(entry.mbr for entry in entries)


def _margin(entries: Sequence[Entry]) -> float:
    return _group_mbr(entries).margin() if entries else 0.0


def rstar_split(entries: Sequence[Entry], min_fill: int) -> Tuple[List[Entry], List[Entry]]:
    """Split ``entries`` into two groups with the R* heuristic.

    Parameters
    ----------
    entries:
        The overflowing entry list (length >= 2).
    min_fill:
        Minimum number of entries per resulting group; clamped so that a
        valid split always exists.

    Returns
    -------
    (left, right):
        Two non-empty entry lists whose union is ``entries``.
    """
    entries = list(entries)
    total = len(entries)
    if total < 2:
        raise ValueError("cannot split fewer than two entries")
    min_fill = max(1, min(min_fill, total - 1))

    best_axis = None
    best_axis_margin = float("inf")
    axis_sortings = {}

    for axis in ("x", "y"):
        if axis == "x":
            by_lower = sorted(entries, key=lambda e: (e.mbr.min_x, e.mbr.max_x))
            by_upper = sorted(entries, key=lambda e: (e.mbr.max_x, e.mbr.min_x))
        else:
            by_lower = sorted(entries, key=lambda e: (e.mbr.min_y, e.mbr.max_y))
            by_upper = sorted(entries, key=lambda e: (e.mbr.max_y, e.mbr.min_y))

        margin_sum = 0.0
        for ordering in (by_lower, by_upper):
            for split_at in range(min_fill, total - min_fill + 1):
                margin_sum += _margin(ordering[:split_at]) + _margin(ordering[split_at:])
        axis_sortings[axis] = (by_lower, by_upper)
        if margin_sum < best_axis_margin:
            best_axis_margin = margin_sum
            best_axis = axis

    by_lower, by_upper = axis_sortings[best_axis]
    best_split: Tuple[List[Entry], List[Entry]] = ([], [])
    best_overlap = float("inf")
    best_area = float("inf")
    for ordering in (by_lower, by_upper):
        for split_at in range(min_fill, total - min_fill + 1):
            left, right = ordering[:split_at], ordering[split_at:]
            left_mbr, right_mbr = _group_mbr(left), _group_mbr(right)
            overlap = left_mbr.intersection_area(right_mbr)
            area = left_mbr.area() + right_mbr.area()
            if overlap < best_overlap or (overlap == best_overlap and area < best_area):
                best_overlap = overlap
                best_area = area
                best_split = (list(left), list(right))
    return best_split


def quadratic_split(entries: Sequence[Entry], min_fill: int) -> Tuple[List[Entry], List[Entry]]:
    """Guttman's quadratic split (baseline splitter)."""
    entries = list(entries)
    total = len(entries)
    if total < 2:
        raise ValueError("cannot split fewer than two entries")
    min_fill = max(1, min(min_fill, total - 1))

    # Pick seeds: the pair wasting the most area.
    worst_waste = -1.0
    seed_a, seed_b = 0, 1
    for i in range(total):
        for j in range(i + 1, total):
            waste = (entries[i].mbr.union(entries[j].mbr).area()
                     - entries[i].mbr.area() - entries[j].mbr.area())
            if waste > worst_waste:
                worst_waste = waste
                seed_a, seed_b = i, j

    left = [entries[seed_a]]
    right = [entries[seed_b]]
    remaining = [e for k, e in enumerate(entries) if k not in (seed_a, seed_b)]

    while remaining:
        # If one group must absorb everything to reach min_fill, do so.
        if len(left) + len(remaining) == min_fill:
            left.extend(remaining)
            break
        if len(right) + len(remaining) == min_fill:
            right.extend(remaining)
            break

        left_mbr, right_mbr = _group_mbr(left), _group_mbr(right)
        best_index = 0
        best_diff = -1.0
        for index, entry in enumerate(remaining):
            d_left = left_mbr.enlargement(entry.mbr)
            d_right = right_mbr.enlargement(entry.mbr)
            diff = abs(d_left - d_right)
            if diff > best_diff:
                best_diff = diff
                best_index = index
        entry = remaining.pop(best_index)
        d_left = left_mbr.enlargement(entry.mbr)
        d_right = right_mbr.enlargement(entry.mbr)
        if d_left < d_right or (d_left == d_right and len(left) <= len(right)):
            left.append(entry)
        else:
            right.append(entry)
    return left, right
