"""Node-splitting heuristics.

Two splitters are provided:

* :func:`rstar_split` — the R*-tree split (Beckmann et al. 1990): choose the
  split axis by minimum margin sum, then the split index by minimum overlap
  (ties broken by minimum total area).  This is used both by the dynamic
  insertion path of :class:`~repro.rtree.tree.RTree` and — crucially for the
  paper — by :class:`~repro.rtree.partition_tree.PartitionTree`, which
  recursively applies the same heuristic to build the binary partition tree
  of every node ("The partitioning uses the R-tree node splitting algorithm
  to assure minimal overlap", Section 4.2).
* :func:`quadratic_split` — Guttman's quadratic split, kept as a baseline and
  for tests comparing tree quality.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.geometry import Rect
from repro.rtree.entry import Entry

_Bounds = Tuple[float, float, float, float]


def _group_mbr(entries: Sequence[Entry]) -> Rect:
    return Rect.bounding(entry.mbr for entry in entries)


def _margin(entries: Sequence[Entry]) -> float:
    return _group_mbr(entries).margin() if entries else 0.0


def _prefix_bounds(mbrs: Sequence[Rect]) -> List[_Bounds]:
    """``bounds[i]`` = MBR coords of ``mbrs[:i + 1]`` (one running pass)."""
    bounds: List[_Bounds] = []
    min_x = min_y = float("inf")
    max_x = max_y = float("-inf")
    for mbr in mbrs:
        if mbr.min_x < min_x:
            min_x = mbr.min_x
        if mbr.min_y < min_y:
            min_y = mbr.min_y
        if mbr.max_x > max_x:
            max_x = mbr.max_x
        if mbr.max_y > max_y:
            max_y = mbr.max_y
        bounds.append((min_x, min_y, max_x, max_y))
    return bounds


def _suffix_bounds(mbrs: Sequence[Rect]) -> List[_Bounds]:
    """``bounds[i]`` = MBR coords of ``mbrs[i:]`` (one running pass)."""
    bounds: List[_Bounds] = [None] * len(mbrs)  # type: ignore[list-item]
    min_x = min_y = float("inf")
    max_x = max_y = float("-inf")
    for index in range(len(mbrs) - 1, -1, -1):
        mbr = mbrs[index]
        if mbr.min_x < min_x:
            min_x = mbr.min_x
        if mbr.min_y < min_y:
            min_y = mbr.min_y
        if mbr.max_x > max_x:
            max_x = mbr.max_x
        if mbr.max_y > max_y:
            max_y = mbr.max_y
        bounds[index] = (min_x, min_y, max_x, max_y)
    return bounds


def rstar_split(entries: Sequence[Entry], min_fill: int) -> Tuple[List[Entry], List[Entry]]:
    """Split ``entries`` into two groups with the R* heuristic.

    Both the axis choice (minimum margin sum) and the index choice (minimum
    overlap, ties by minimum area) evaluate every candidate split position
    against precomputed running prefix/suffix bounds, so one call costs
    O(n log n) for the sorts plus O(n) per ordering — not the O(n²) of
    re-bounding each candidate group from scratch.  Margins, overlaps and
    areas come out bit-identical to the naive evaluation (running min/max is
    exact and the accumulation order is preserved), so the chosen splits —
    and therefore every tree built through this function — are unchanged.

    Parameters
    ----------
    entries:
        The overflowing entry list (length >= 2).
    min_fill:
        Minimum number of entries per resulting group; clamped so that a
        valid split always exists.

    Returns
    -------
    (left, right):
        Two non-empty entry lists whose union is ``entries``.
    """
    entries = list(entries)
    total = len(entries)
    if total < 2:
        raise ValueError("cannot split fewer than two entries")
    min_fill = max(1, min(min_fill, total - 1))
    split_range = range(min_fill, total - min_fill + 1)

    best_axis = None
    best_axis_margin = float("inf")
    axis_sortings = {}
    axis_bounds = {}

    for axis in ("x", "y"):
        if axis == "x":
            by_lower = sorted(entries, key=lambda e: (e.mbr.min_x, e.mbr.max_x))
            by_upper = sorted(entries, key=lambda e: (e.mbr.max_x, e.mbr.min_x))
        else:
            by_lower = sorted(entries, key=lambda e: (e.mbr.min_y, e.mbr.max_y))
            by_upper = sorted(entries, key=lambda e: (e.mbr.max_y, e.mbr.min_y))

        margin_sum = 0.0
        bounds_pairs = []
        for ordering in (by_lower, by_upper):
            mbrs = [entry.mbr for entry in ordering]
            prefix = _prefix_bounds(mbrs)
            suffix = _suffix_bounds(mbrs)
            bounds_pairs.append((prefix, suffix))
            for split_at in split_range:
                p_min_x, p_min_y, p_max_x, p_max_y = prefix[split_at - 1]
                s_min_x, s_min_y, s_max_x, s_max_y = suffix[split_at]
                prefix_margin = (p_max_x - p_min_x) + (p_max_y - p_min_y)
                suffix_margin = (s_max_x - s_min_x) + (s_max_y - s_min_y)
                margin_sum += prefix_margin + suffix_margin
        axis_sortings[axis] = (by_lower, by_upper)
        axis_bounds[axis] = bounds_pairs
        if margin_sum < best_axis_margin:
            best_axis_margin = margin_sum
            best_axis = axis

    orderings = axis_sortings[best_axis]
    bounds_pairs = axis_bounds[best_axis]
    best_ordering = orderings[0]
    best_at = min_fill
    best_overlap = float("inf")
    best_area = float("inf")
    for ordering, (prefix, suffix) in zip(orderings, bounds_pairs):
        for split_at in split_range:
            l_min_x, l_min_y, l_max_x, l_max_y = prefix[split_at - 1]
            r_min_x, r_min_y, r_max_x, r_max_y = suffix[split_at]
            i_min_x = l_min_x if l_min_x > r_min_x else r_min_x
            i_min_y = l_min_y if l_min_y > r_min_y else r_min_y
            i_max_x = l_max_x if l_max_x < r_max_x else r_max_x
            i_max_y = l_max_y if l_max_y < r_max_y else r_max_y
            if i_min_x <= i_max_x and i_min_y <= i_max_y:
                overlap = (i_max_x - i_min_x) * (i_max_y - i_min_y)
            else:
                overlap = 0.0
            area = ((l_max_x - l_min_x) * (l_max_y - l_min_y)
                    + (r_max_x - r_min_x) * (r_max_y - r_min_y))
            if overlap < best_overlap or (overlap == best_overlap and area < best_area):
                best_overlap = overlap
                best_area = area
                best_ordering = ordering
                best_at = split_at
    return list(best_ordering[:best_at]), list(best_ordering[best_at:])


def quadratic_split(entries: Sequence[Entry], min_fill: int) -> Tuple[List[Entry], List[Entry]]:
    """Guttman's quadratic split (baseline splitter)."""
    entries = list(entries)
    total = len(entries)
    if total < 2:
        raise ValueError("cannot split fewer than two entries")
    min_fill = max(1, min(min_fill, total - 1))

    # Pick seeds: the pair wasting the most area.
    worst_waste = -1.0
    seed_a, seed_b = 0, 1
    for i in range(total):
        for j in range(i + 1, total):
            waste = (entries[i].mbr.union(entries[j].mbr).area()
                     - entries[i].mbr.area() - entries[j].mbr.area())
            if waste > worst_waste:
                worst_waste = waste
                seed_a, seed_b = i, j

    left = [entries[seed_a]]
    right = [entries[seed_b]]
    remaining = [e for k, e in enumerate(entries) if k not in (seed_a, seed_b)]

    while remaining:
        # If one group must absorb everything to reach min_fill, do so.
        if len(left) + len(remaining) == min_fill:
            left.extend(remaining)
            break
        if len(right) + len(remaining) == min_fill:
            right.extend(remaining)
            break

        left_mbr, right_mbr = _group_mbr(left), _group_mbr(right)
        best_index = 0
        best_diff = -1.0
        for index, entry in enumerate(remaining):
            d_left = left_mbr.enlargement(entry.mbr)
            d_right = right_mbr.enlargement(entry.mbr)
            diff = abs(d_left - d_right)
            if diff > best_diff:
                best_diff = diff
                best_index = index
        entry = remaining.pop(best_index)
        d_left = left_mbr.enlargement(entry.mbr)
        d_right = right_mbr.enlargement(entry.mbr)
        if d_left < d_right or (d_left == d_right and len(left) <= len(right)):
            left.append(entry)
        else:
            right.append(entry)
    return left, right
