"""Binary (de)serialisation of R-tree nodes and object records.

These are the page codecs of the persistence subsystem
(:mod:`repro.storage.paged`): one node or one object record per disk page,
matching the paper's model of an R-tree whose nodes *are* pages.  The format
is deliberately simple and fully deterministic:

* all integers are little-endian fixed width; absent ids (``parent_id`` of
  the root) encode as ``-1``;
* all coordinates are IEEE-754 doubles, so every ``Rect`` round-trips
  bit-exactly — traversal decisions (intersection tests, MINDIST orderings)
  over a decoded tree are *identical* to the in-memory original, which is
  what makes the file backend's visited-page counts provably equal to the
  in-memory accounting;
* entry order inside a node is preserved, so a decoded node re-encodes to
  the identical byte string (save → load → save is byte-stable).

Wire layout
-----------
Node page::

    <q node_id> <i level> <q parent_id|-1> <i entry_count>
    entry*: <B kind> <q id> <4d mbr>      # kind 0 = child, 1 = object

Object page::

    <q object_id> <q size_bytes> <4d mbr>
"""

from __future__ import annotations

import struct
from typing import List

from repro.geometry import Rect
from repro.rtree.entry import Entry, ObjectRecord
from repro.rtree.node import Node

_NODE_HEADER = struct.Struct("<qiqi")
_NODE_ENTRY = struct.Struct("<Bq4d")
_OBJECT_RECORD = struct.Struct("<qq4d")

_KIND_CHILD = 0
_KIND_OBJECT = 1


def encoded_node_size(entry_count: int) -> int:
    """Encoded byte size of a node with ``entry_count`` entries."""
    return _NODE_HEADER.size + entry_count * _NODE_ENTRY.size


def encoded_object_size() -> int:
    """Encoded byte size of one object record (fixed width)."""
    return _OBJECT_RECORD.size


def encode_node(node: Node) -> bytes:
    """Serialise one node to its page byte string."""
    parts: List[bytes] = [_NODE_HEADER.pack(
        node.node_id, node.level,
        -1 if node.parent_id is None else node.parent_id,
        len(node.entries))]
    for entry in node.entries:
        mbr = entry.mbr
        if entry.is_leaf_entry:
            kind, ref = _KIND_OBJECT, entry.object_id
        else:
            kind, ref = _KIND_CHILD, entry.child_id
        parts.append(_NODE_ENTRY.pack(kind, ref, mbr.min_x, mbr.min_y,
                                      mbr.max_x, mbr.max_y))
    return b"".join(parts)


def decode_node(data: bytes) -> Node:
    """Reconstruct a node from its page byte string (entry order preserved)."""
    node_id, level, parent_id, entry_count = _NODE_HEADER.unpack_from(data, 0)
    entries: List[Entry] = []
    offset = _NODE_HEADER.size
    for _ in range(entry_count):
        kind, ref, min_x, min_y, max_x, max_y = _NODE_ENTRY.unpack_from(data, offset)
        offset += _NODE_ENTRY.size
        mbr = Rect(min_x, min_y, max_x, max_y)
        if kind == _KIND_OBJECT:
            entries.append(Entry(mbr=mbr, object_id=ref))
        elif kind == _KIND_CHILD:
            entries.append(Entry(mbr=mbr, child_id=ref))
        else:
            raise ValueError(f"corrupt node page: unknown entry kind {kind}")
    return Node(node_id=node_id, level=level, entries=entries,
                parent_id=None if parent_id == -1 else parent_id)


def encode_object(record: ObjectRecord) -> bytes:
    """Serialise one object record to its page byte string."""
    mbr = record.mbr
    return _OBJECT_RECORD.pack(record.object_id, record.size_bytes,
                               mbr.min_x, mbr.min_y, mbr.max_x, mbr.max_y)


def decode_object(data: bytes) -> ObjectRecord:
    """Reconstruct an object record from its page byte string."""
    object_id, size_bytes, min_x, min_y, max_x, max_y = _OBJECT_RECORD.unpack_from(data, 0)
    return ObjectRecord(object_id=object_id,
                        mbr=Rect(min_x, min_y, max_x, max_y),
                        size_bytes=size_bytes)
