"""Best-first k-nearest-neighbour search (Hjaltason & Samet)."""

from __future__ import annotations

import heapq
import itertools
import math
from typing import List, Optional, Set, Tuple

from repro.geometry import Point
from repro.rtree.tree import RTree


def knn_search(tree: RTree, query_point: Point, k: int,
               visited_nodes: Optional[Set[int]] = None) -> List[Tuple[int, float]]:
    """Return the ``k`` nearest objects to ``query_point`` as ``(object_id, distance)``.

    The algorithm is the classic best-first search: a priority queue ``H``
    keyed by MINDIST holds to-be-explored entries; when a leaf entry is
    popped its object is reported.  ``visited_nodes`` (if given) collects the
    node pages read during the search, which is the "supporting index" the
    server ships to a proactive-caching client.

    Two hot-path refinements keep the output (results *and* visited pages)
    identical to the textbook formulation:

    * the queue is keyed by **squared** MINDIST — the square root is taken
      once per reported result, not once per entry touched;
    * a max-heap of the ``k`` smallest object-candidate distances seen so far
      provides an upper bound on the k-th result; entries whose MINDIST
      strictly exceeds it are never pushed.  Such entries could never be
      popped before the search terminates (the ``k`` closer objects drain
      first), so skipping them changes neither the reported neighbours nor
      the set of nodes visited.
    """
    if k <= 0:
        return []
    results: List[Tuple[int, float]] = []
    if not tree.root.entries:
        return results
    px = query_point.x
    py = query_point.y

    counter = itertools.count()
    next_tiebreak = counter.__next__
    push = heapq.heappush
    # (squared MINDIST, tie-break, node_id, object_id)
    heap: List[Tuple[float, int, Optional[int], Optional[int]]] = [
        (0.0, next_tiebreak(), tree.root_id, None)]
    # Negated squared distances of the k closest object candidates seen.
    bound_heap: List[float] = []
    bound = math.inf

    while heap and len(results) < k:
        dist_sq, _, node_id, object_id = heapq.heappop(heap)
        if object_id is not None:
            results.append((object_id, math.sqrt(dist_sq)))
            continue
        node = tree.node(node_id)
        if visited_nodes is not None:
            visited_nodes.add(node_id)
        for entry in node.entries:
            mbr = entry.mbr
            dx = mbr.min_x - px
            if dx < 0.0:
                dx = px - mbr.max_x
                if dx < 0.0:
                    dx = 0.0
            dy = mbr.min_y - py
            if dy < 0.0:
                dy = py - mbr.max_y
                if dy < 0.0:
                    dy = 0.0
            entry_dist_sq = dx * dx + dy * dy
            if entry_dist_sq > bound:
                continue
            entry_object_id = entry.object_id
            if entry_object_id is not None:
                push(heap, (entry_dist_sq, next_tiebreak(), None, entry_object_id))
                if len(bound_heap) < k:
                    push(bound_heap, -entry_dist_sq)
                    if len(bound_heap) == k:
                        bound = -bound_heap[0]
                elif entry_dist_sq < bound:
                    heapq.heapreplace(bound_heap, -entry_dist_sq)
                    bound = -bound_heap[0]
            else:
                push(heap, (entry_dist_sq, next_tiebreak(), entry.child_id, None))
    return results


def nearest_neighbor(tree: RTree, query_point: Point) -> Optional[Tuple[int, float]]:
    """The single nearest neighbour, or ``None`` for an empty tree."""
    found = knn_search(tree, query_point, 1)
    return found[0] if found else None


def knn_distance(tree: RTree, query_point: Point, k: int) -> float:
    """Distance to the k-th nearest neighbour (``inf`` if fewer than k objects)."""
    found = knn_search(tree, query_point, k)
    if len(found) < k:
        return float("inf")
    return found[-1][1]
