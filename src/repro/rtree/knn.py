"""Best-first k-nearest-neighbour search (Hjaltason & Samet)."""

from __future__ import annotations

import heapq
import itertools
from typing import List, Optional, Set, Tuple

from repro.geometry import Point
from repro.rtree.tree import RTree


def knn_search(tree: RTree, query_point: Point, k: int,
               visited_nodes: Optional[Set[int]] = None) -> List[Tuple[int, float]]:
    """Return the ``k`` nearest objects to ``query_point`` as ``(object_id, distance)``.

    The algorithm is the classic best-first search: a priority queue ``H``
    keyed by MINDIST holds to-be-explored entries; when a leaf entry is
    popped its object is reported.  ``visited_nodes`` (if given) collects the
    node pages read during the search, which is the "supporting index" the
    server ships to a proactive-caching client.
    """
    if k <= 0:
        return []
    results: List[Tuple[int, float]] = []
    if not tree.root.entries:
        return results

    counter = itertools.count()
    heap: List[Tuple[float, int, Optional[int], Optional[int]]] = []
    heapq.heappush(heap, (0.0, next(counter), tree.root_id, None))

    while heap and len(results) < k:
        distance, _, node_id, object_id = heapq.heappop(heap)
        if object_id is not None:
            results.append((object_id, distance))
            continue
        node = tree.node(node_id)
        if visited_nodes is not None:
            visited_nodes.add(node_id)
        for entry in node.entries:
            entry_distance = entry.mbr.min_dist_to_point(query_point)
            if entry.is_leaf_entry:
                heapq.heappush(heap, (entry_distance, next(counter), None, entry.object_id))
            else:
                heapq.heappush(heap, (entry_distance, next(counter), entry.child_id, None))
    return results


def nearest_neighbor(tree: RTree, query_point: Point) -> Optional[Tuple[int, float]]:
    """The single nearest neighbour, or ``None`` for an empty tree."""
    found = knn_search(tree, query_point, 1)
    return found[0] if found else None


def knn_distance(tree: RTree, query_point: Point, k: int) -> float:
    """Distance to the k-th nearest neighbour (``inf`` if fewer than k objects)."""
    found = knn_search(tree, query_point, k)
    if len(found) < k:
        return float("inf")
    return found[-1][1]
