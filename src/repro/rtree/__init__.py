"""A paged R*-tree and the spatial query algorithms used by the paper.

The tree is *paged*: every node lives in a :class:`~repro.rtree.tree.PageStore`
keyed by an integer node id, mirroring the paper's view of an R-tree node as a
disk page with a physical address.  Proactive caching caches node snapshots by
these ids, so keeping the page abstraction explicit is what makes the cache
faithful to the paper.

Public surface:

* :class:`RTree` — insertion (R* ChooseSubtree + split + forced reinsert),
  STR bulk loading, deletion, and the classic traversals.
* :func:`range_search`, :func:`knn_search` (best-first, Hjaltason–Samet),
  :func:`rtree_join` (recursive RJ) and :func:`bfrj_join` (breadth-first with
  an intermediate join index).
* :class:`PartitionTree` — the per-node binary partition tree of Section 4.2,
  with compact-form and ``d+``-level compact-form computation.
* :class:`SizeModel` — byte sizes of entries, nodes and messages.
"""

from repro.rtree.entry import Entry, ObjectRecord
from repro.rtree.node import Node
from repro.rtree.sizes import SizeModel
from repro.rtree.tree import PageStore, RTree
from repro.rtree.bulk import bulk_load_str
from repro.rtree.range_search import range_search
from repro.rtree.knn import knn_search
from repro.rtree.join import rtree_join, bfrj_join
from repro.rtree.partition_tree import PartitionTree, SuperEntry
from repro.rtree.validation import assert_tree_valid

__all__ = [
    "assert_tree_valid",
    "Entry",
    "ObjectRecord",
    "Node",
    "SizeModel",
    "PageStore",
    "RTree",
    "bulk_load_str",
    "range_search",
    "knn_search",
    "rtree_join",
    "bfrj_join",
    "PartitionTree",
    "SuperEntry",
]
