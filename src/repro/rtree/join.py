"""Spatial joins on R-trees: the recursive RJ algorithm and breadth-first BFRJ.

The paper's workload uses a distance *self*-join ("pairs of objects whose
mutual distance is below ``Distjoin``"); both algorithms here accept an
arbitrary pair predicate so intersection joins are available too.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, List, Optional, Set, Tuple

from repro.geometry import Rect
from repro.rtree.tree import RTree

PairPredicate = Callable[[Rect, Rect], bool]


def distance_predicate(threshold: float) -> PairPredicate:
    """Predicate "minimum distance between the MBRs is at most ``threshold``".

    Evaluated on squared distances with inlined coordinate arithmetic — this
    predicate runs once per candidate pair in the join inner loops, so it
    avoids the ``Rect.min_dist_to_rect`` method call and its square root.
    """
    threshold_sq = threshold * threshold

    def predicate(a: Rect, b: Rect) -> bool:
        dx = a.min_x - b.max_x
        if dx < 0.0:
            dx = b.min_x - a.max_x
            if dx < 0.0:
                dx = 0.0
        dy = a.min_y - b.max_y
        if dy < 0.0:
            dy = b.min_y - a.max_y
            if dy < 0.0:
                dy = 0.0
        return dx * dx + dy * dy <= threshold_sq

    return predicate


def intersection_predicate() -> PairPredicate:
    """Predicate "the MBRs intersect"."""

    def predicate(a: Rect, b: Rect) -> bool:
        return a.intersects(b)

    return predicate


def rtree_join(left: RTree, right: RTree, predicate: PairPredicate,
               visited_left: Optional[Set[int]] = None,
               visited_right: Optional[Set[int]] = None,
               self_join: bool = False) -> List[Tuple[int, int]]:
    """The recursive R-tree join (Brinkhoff, Kriegel & Seeger).

    Returns object-id pairs satisfying ``predicate``.  For a self join
    (``self_join=True``) symmetric duplicates ``(b, a)`` and identity pairs
    ``(a, a)`` are suppressed.
    """
    results: List[Tuple[int, int]] = []
    if not left.root.entries or not right.root.entries:
        return results
    _join_nodes(left, right, left.root_id, right.root_id, predicate,
                results, visited_left, visited_right, self_join)
    return results


def _join_nodes(left: RTree, right: RTree, left_id: int, right_id: int,
                predicate: PairPredicate, results: List[Tuple[int, int]],
                visited_left: Optional[Set[int]], visited_right: Optional[Set[int]],
                self_join: bool) -> None:
    left_node = left.node(left_id)
    right_node = right.node(right_id)
    if visited_left is not None:
        visited_left.add(left_id)
    if visited_right is not None:
        visited_right.add(right_id)

    for left_entry in left_node.entries:
        for right_entry in right_node.entries:
            if not predicate(left_entry.mbr, right_entry.mbr):
                continue
            if left_entry.is_leaf_entry and right_entry.is_leaf_entry:
                pair = (left_entry.object_id, right_entry.object_id)
                if self_join:
                    if pair[0] >= pair[1]:
                        continue
                results.append(pair)
            elif left_entry.is_leaf_entry:
                _join_entry_with_node(left_entry.mbr, left_entry.object_id, right,
                                      right_entry.child_id, predicate, results,
                                      visited_right, left_side=True, self_join=self_join)
            elif right_entry.is_leaf_entry:
                _join_entry_with_node(right_entry.mbr, right_entry.object_id, left,
                                      left_entry.child_id, predicate, results,
                                      visited_left, left_side=False, self_join=self_join)
            else:
                _join_nodes(left, right, left_entry.child_id, right_entry.child_id,
                            predicate, results, visited_left, visited_right, self_join)


def _join_entry_with_node(entry_mbr: Rect, entry_object: int, tree: RTree,
                          node_id: int, predicate: PairPredicate,
                          results: List[Tuple[int, int]],
                          visited: Optional[Set[int]], left_side: bool,
                          self_join: bool) -> None:
    """Join a single leaf entry against a whole subtree (unequal heights)."""
    node = tree.node(node_id)
    if visited is not None:
        visited.add(node_id)
    for entry in node.entries:
        if not predicate(entry_mbr, entry.mbr):
            continue
        if entry.is_leaf_entry:
            pair = ((entry_object, entry.object_id) if left_side
                    else (entry.object_id, entry_object))
            if self_join:
                if pair[0] >= pair[1]:
                    continue
            results.append(pair)
        else:
            _join_entry_with_node(entry_mbr, entry_object, tree, entry.child_id,
                                  predicate, results, visited, left_side, self_join)


def bfrj_join(left: RTree, right: RTree, predicate: PairPredicate,
              visited_left: Optional[Set[int]] = None,
              visited_right: Optional[Set[int]] = None,
              self_join: bool = False) -> List[Tuple[int, int]]:
    """Breadth-First R-tree Join (Huang, Jing & Rundensteiner).

    Maintains an intermediate join index (IJI) — a FIFO of node-id pairs to
    be joined — instead of recursing.  The IJI plays the same role as the
    priority queue in best-first kNN search, which is exactly the structural
    analogy the paper's generic client-side processor relies on.
    """
    results: List[Tuple[int, int]] = []
    if not left.root.entries or not right.root.entries:
        return results

    iji = deque([(left.root_id, right.root_id)])
    while iji:
        left_id, right_id = iji.popleft()
        left_node = left.node(left_id)
        right_node = right.node(right_id)
        if visited_left is not None:
            visited_left.add(left_id)
        if visited_right is not None:
            visited_right.add(right_id)
        for left_entry in left_node.entries:
            for right_entry in right_node.entries:
                if not predicate(left_entry.mbr, right_entry.mbr):
                    continue
                if left_entry.is_leaf_entry and right_entry.is_leaf_entry:
                    pair = (left_entry.object_id, right_entry.object_id)
                    if self_join and pair[0] >= pair[1]:
                        continue
                    results.append(pair)
                elif not left_entry.is_leaf_entry and not right_entry.is_leaf_entry:
                    iji.append((left_entry.child_id, right_entry.child_id))
                elif left_entry.is_leaf_entry:
                    _join_entry_with_node(left_entry.mbr, left_entry.object_id, right,
                                          right_entry.child_id, predicate, results,
                                          visited_right, left_side=True,
                                          self_join=self_join)
                else:
                    _join_entry_with_node(right_entry.mbr, right_entry.object_id, left,
                                          left_entry.child_id, predicate, results,
                                          visited_left, left_side=False,
                                          self_join=self_join)
    return results
