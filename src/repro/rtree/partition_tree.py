"""Binary partition trees and compact forms of R-tree nodes (paper Section 4.2).

Every R-tree node ``n`` gets an (offline, one-time) *binary partition tree*
over its entries: the entry set is recursively split in two with the same
R*-split heuristic the tree itself uses, until singleton sets remain.  An
internal partition-tree node is a *super entry* identified by ``(n, code)``
where ``code`` is the 0/1 path from the partition-tree root.

A *compact form* ``CF(n, Qr)`` is a cut through the partition tree: entries
the query actually needed are kept verbatim while untouched regions of the
node are collapsed into super entries.  The ``d+``-level compact form
refines every cut element by ``d`` further levels (``d = 0`` is the normal
compact form, ``d = height`` is the full form).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from repro._compat import DATACLASS_SLOTS
from repro.geometry import Rect
from repro.rtree.entry import Entry
from repro.rtree.node import Node
from repro.rtree.split import rstar_split


@dataclass(frozen=True, **DATACLASS_SLOTS)
class SuperEntry:
    """A coarse stand-in ``(node_id, code)`` for a subset of a node's entries."""

    node_id: int
    code: str
    mbr: Rect

    def key(self) -> str:
        """Stable identity string."""
        return f"super:{self.node_id}:{self.code}"


PartitionElement = Union[Entry, SuperEntry]


class PartitionTree:
    """The binary partition tree of one R-tree node.

    The tree is materialised as two dictionaries keyed by code:

    * ``subsets[code]`` — the list of real entries under that code;
    * ``mbrs[code]`` — the MBR of that subset.

    A code with a single entry is a *leaf* of the partition tree and maps
    directly to that real entry; the code of a real entry can be recovered
    with :meth:`entry_code`.
    """

    def __init__(self, node: Node) -> None:
        if not node.entries:
            raise ValueError(f"cannot build a partition tree for empty node {node.node_id}")
        self.node_id = node.node_id
        self.level = node.level
        self.subsets: Dict[str, List[Entry]] = {}
        self.mbrs: Dict[str, Rect] = {}
        self._entry_codes: Dict[str, str] = {}
        self._build("", list(node.entries))
        self.height = max(len(code) for code in self.subsets)
        # The tree is immutable after construction, so leaf membership and
        # the two-element child lists of internal codes can be served from
        # caches instead of being recomputed in the query-processing loops.
        self._leaf_codes: Set[str] = set(self._entry_codes.values())
        self._children_cache: Dict[str, List[PartitionElement]] = {}

    def _build(self, code: str, entries: List[Entry]) -> None:
        self.subsets[code] = entries
        self.mbrs[code] = Rect.bounding(e.mbr for e in entries)
        if len(entries) == 1:
            self._entry_codes[entries[0].key()] = code
            return
        min_fill = max(1, len(entries) // 2) if len(entries) <= 3 else max(1, len(entries) // 3)
        left, right = rstar_split(entries, min_fill=min_fill)
        self._build(code + "0", left)
        self._build(code + "1", right)

    # ------------------------------------------------------------------ #
    # navigation
    # ------------------------------------------------------------------ #
    def is_leaf_code(self, code: str) -> bool:
        """True when ``code`` designates a single real entry."""
        if code in self._leaf_codes:
            return True
        # Preserve the KeyError contract for unknown codes.
        self.subsets[code]
        return False

    def entry_at(self, code: str) -> Entry:
        """The single real entry at a leaf code."""
        entries = self.subsets[code]
        if len(entries) != 1:
            raise ValueError(f"code {code!r} of node {self.node_id} is not a leaf code")
        return entries[0]

    def entry_code(self, entry: Entry) -> str:
        """The leaf code of a real entry of this node."""
        return self._entry_codes[entry.key()]

    def children(self, code: str) -> List[PartitionElement]:
        """The two children of an internal code (real entries or super entries).

        Memoised: the elements are immutable and callers only iterate the
        returned list, so the same list object is handed out every time.
        """
        cached = self._children_cache.get(code)
        if cached is not None:
            return cached
        if self.is_leaf_code(code):
            raise ValueError(f"code {code!r} is a leaf and has no children")
        elements: List[PartitionElement] = []
        for child_code in (code + "0", code + "1"):
            if self.is_leaf_code(child_code):
                elements.append(self.entry_at(child_code))
            else:
                elements.append(SuperEntry(self.node_id, child_code, self.mbrs[child_code]))
        self._children_cache[code] = elements
        return elements

    def element_at(self, code: str) -> PartitionElement:
        """The element (real entry or super entry) designated by ``code``."""
        if self.is_leaf_code(code):
            return self.entry_at(code)
        return SuperEntry(self.node_id, code, self.mbrs[code])

    def root_elements(self) -> List[PartitionElement]:
        """Starting elements for a partition-tree traversal of this node."""
        if self.is_leaf_code(""):
            return [self.entry_at("")]
        return self.children("")

    def entries_under(self, code: str) -> List[Entry]:
        """All real entries in the subset designated by ``code``."""
        return list(self.subsets[code])

    def internal_node_count(self) -> int:
        """Number of internal partition-tree nodes (``N - 1`` for N entries)."""
        return sum(1 for code in self.subsets if not self.is_leaf_code(code))

    def size_bytes(self, entry_bytes: int, pointer_bytes: int) -> int:
        """Storage overhead of this partition tree (paper Section 4.2).

        Each internal node stores one super entry (MBR + id) plus two child
        pointers.
        """
        return self.internal_node_count() * (entry_bytes + 2 * pointer_bytes)

    # ------------------------------------------------------------------ #
    # compact forms
    # ------------------------------------------------------------------ #
    def compact_form(self, expanded_codes: Set[str]) -> List[Tuple[str, PartitionElement]]:
        """The compact-form cut given the set of codes that were *expanded*.

        ``expanded_codes`` are internal codes whose children the query
        processor pushed.  The cut consists of every pushed element whose own
        code was not expanded: walking from the root, we descend through
        expanded codes and emit the first non-expanded element on each path.
        The result covers every entry of the node exactly once.

        Returns ``(code, element)`` pairs.
        """
        cut: List[Tuple[str, PartitionElement]] = []
        stack = [""]
        while stack:
            code = stack.pop()
            if self.is_leaf_code(code):
                cut.append((code, self.entry_at(code)))
            elif code in expanded_codes or code == "" and "" in expanded_codes:
                stack.append(code + "0")
                stack.append(code + "1")
            elif code == "":
                # The root itself was never expanded: the whole node collapses
                # to its two top-level children (the minimum meaningful form).
                stack.append("0")
                stack.append("1")
            else:
                cut.append((code, SuperEntry(self.node_id, code, self.mbrs[code])))
        return cut

    def full_form(self) -> List[Tuple[str, Entry]]:
        """Every real entry with its leaf code (the full form of the node)."""
        return [(code, self.entry_at(code))
                for code in sorted(self.subsets) if self.is_leaf_code(code)]

    def expand_element(self, code: str, levels: int) -> List[Tuple[str, PartitionElement]]:
        """Replace the element at ``code`` by its ``levels``-deep descendants.

        Descendants that are real entries are emitted as soon as they are
        reached, matching the paper's "d level descendant nodes or the
        entries whichever come first".
        """
        results: List[Tuple[str, PartitionElement]] = []
        frontier = [(code, 0)]
        while frontier:
            current, depth = frontier.pop()
            if self.is_leaf_code(current):
                results.append((current, self.entry_at(current)))
            elif depth >= levels:
                results.append((current, SuperEntry(self.node_id, current, self.mbrs[current])))
            else:
                frontier.append((current + "0", depth + 1))
                frontier.append((current + "1", depth + 1))
        return results

    def d_level_form(self, expanded_codes: Set[str], d: int) -> List[Tuple[str, PartitionElement]]:
        """The ``d+``-level compact form (paper Section 4.3)."""
        refined: List[Tuple[str, PartitionElement]] = []
        for code, element in self.compact_form(expanded_codes):
            if isinstance(element, SuperEntry) and d > 0:
                refined.extend(self.expand_element(code, d))
            else:
                refined.append((code, element))
        return refined

    def subtree_form(self, base_code: str, expanded_codes: Set[str],
                     d: int) -> List[Tuple[str, PartitionElement]]:
        """Like :meth:`d_level_form` but restricted to the subtree at ``base_code``.

        Used when the server resumes from a super-entry frontier element: it
        only needs to (re)describe the part of the node below that element.
        """
        cut: List[Tuple[str, PartitionElement]] = []
        stack = [base_code]
        while stack:
            code = stack.pop()
            if self.is_leaf_code(code):
                cut.append((code, self.entry_at(code)))
            elif code in expanded_codes:
                stack.append(code + "0")
                stack.append(code + "1")
            else:
                cut.append((code, SuperEntry(self.node_id, code, self.mbrs[code])))
        if d <= 0:
            return cut
        refined: List[Tuple[str, PartitionElement]] = []
        for code, element in cut:
            if isinstance(element, SuperEntry):
                refined.extend(self.expand_element(code, d))
            else:
                refined.append((code, element))
        return refined


def build_partition_trees(nodes: Iterable[Node]) -> Dict[int, PartitionTree]:
    """Build the partition tree of every node (offline preprocessing step)."""
    return {node.node_id: PartitionTree(node) for node in nodes if node.entries}
