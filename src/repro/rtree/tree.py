"""The paged R*-tree.

The tree owns two stores:

* a :class:`PageStore` mapping node ids to :class:`~repro.rtree.node.Node`
  pages, and
* an object table mapping object ids to
  :class:`~repro.rtree.entry.ObjectRecord` payload descriptors.

Both stores use integer ids exactly as the paper uses "physical addresses":
the mobile client caches *snapshots* of these pages keyed by id, and a
remainder query's priority queue carries ids the server can resolve.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.geometry import Point, Rect
from repro.rtree.entry import Entry, ObjectRecord
from repro.rtree.node import Node
from repro.rtree.sizes import SizeModel
from repro.rtree.split import rstar_split


# repro: allow[SLT01] DatasetUpdater._watch_store monkeypatches edit/allocate/
# free on live instances, which needs __dict__ storage.
@dataclass
class PageStore:
    """An id-addressed in-memory store of R-tree nodes (the "disk").

    This is the default :class:`~repro.storage.backend.StorageBackend`: all
    pages live in a dict, so "page reads" are pure accounting.  The paged
    file backend (:mod:`repro.storage.paged`) implements the same contract
    over an actual file.
    """

    pages: Dict[int, Node] = field(default_factory=dict)
    _next_id: Iterator[int] = field(default_factory=lambda: itertools.count(1))
    reads: int = 0
    writes: int = 0

    def allocate(self, level: int) -> Node:
        """Create, register and return an empty node at ``level``."""
        node = Node(node_id=next(self._next_id), level=level)
        self.pages[node.node_id] = node
        self.writes += 1
        return node

    def get(self, node_id: int) -> Node:
        """Fetch a node by id; counts as a page read."""
        self.reads += 1
        return self.pages[node_id]

    def peek(self, node_id: int) -> Node:
        """Fetch a node without counting a read (used by maintenance code)."""
        return self.pages[node_id]

    def edit(self, node_id: int) -> Node:
        """Fetch a node for in-place structural mutation (no logical read).

        For the in-memory store this is :meth:`peek` — nodes are mutated in
        place.  Copy-on-write backends override it to pin a private mutable
        copy of the page, which is why every mutation path of the tree goes
        through ``edit`` rather than ``peek``.
        """
        return self.pages[node_id]

    def free(self, node_id: int) -> None:
        """Remove a node from the store."""
        del self.pages[node_id]

    def __contains__(self, node_id: int) -> bool:
        return node_id in self.pages

    def __len__(self) -> int:
        return len(self.pages)

    #: Whether the store accepts mutations (read-only backends say False).
    writable = True

    def node_ids(self) -> List[int]:
        """All stored page ids, in insertion (allocation) order."""
        return list(self.pages)

    def iter_nodes(self) -> Iterable[Node]:
        """Iterate over every stored node."""
        return self.pages.values()

    def io_stats(self) -> Dict[str, int]:
        """Physical I/O counters — always zero for the in-memory store."""
        return {"file_reads": 0, "file_writes": 0, "buffer_hits": 0}

    def reset_io_stats(self) -> None:
        """No-op: the in-memory store has no physical counters."""

    def flush(self) -> None:
        """No-op: an in-memory store has nothing to write through."""

    def close(self) -> None:
        """No-op: an in-memory store holds no external resources."""


class RTree:
    """A dynamic R*-tree over :class:`ObjectRecord` data.

    Parameters
    ----------
    size_model:
        Byte-size model; determines the node capacity (page size / entry
        size) and is reused by the caching layers.
    max_entries / min_entries:
        Optional explicit fanout bounds; by default they are derived from
        the size model (min = 40 % of max, the R* recommendation).
    splitter:
        Entry-split function; defaults to the R* split.
    forced_reinsert:
        Whether the first overflow at each level performs the R* forced
        reinsertion of the 30 % most distant entries before splitting.
    store:
        Optional empty :class:`~repro.storage.backend.StorageBackend` to
        build the tree on; defaults to a fresh in-memory :class:`PageStore`.
        To adopt an *already populated* backend use :meth:`from_storage`.
    """

    def _configure(self,
                   size_model: Optional[SizeModel],
                   max_entries: Optional[int],
                   min_entries: Optional[int],
                   splitter: Callable[[Sequence[Entry], int],
                                      Tuple[List[Entry], List[Entry]]],
                   forced_reinsert: bool) -> None:
        """Normalise and validate the shared tree parameters.

        The single source of the fanout-bound derivation, used by both
        :meth:`__init__` and :meth:`from_storage` so built and loaded trees
        can never disagree on the bounds the splitter uses.
        """
        self.size_model = size_model or SizeModel()
        self.max_entries = max_entries or self.size_model.node_capacity
        if self.max_entries < 2:
            raise ValueError("max_entries must be at least 2")
        self.min_entries = min_entries or max(2, int(round(self.max_entries * 0.4)))
        self.min_entries = min(self.min_entries, self.max_entries // 2) or 1
        self.splitter = splitter
        self.forced_reinsert = forced_reinsert

    def __init__(self,
                 size_model: Optional[SizeModel] = None,
                 max_entries: Optional[int] = None,
                 min_entries: Optional[int] = None,
                 splitter: Callable[[Sequence[Entry], int], Tuple[List[Entry], List[Entry]]] = rstar_split,
                 forced_reinsert: bool = True,
                 store: Optional[PageStore] = None) -> None:
        self._configure(size_model, max_entries, min_entries, splitter,
                        forced_reinsert)
        if store is not None and len(store):
            raise ValueError("store must be empty; use RTree.from_storage to "
                             "adopt a populated backend")
        self.store = store if store is not None else PageStore()
        self.objects: Dict[int, ObjectRecord] = {}
        root = self.store.allocate(level=0)
        self.root_id = root.node_id
        self.height = 1
        self._reinsert_levels: set = set()

    @classmethod
    def from_storage(cls, store: PageStore, objects: Dict[int, ObjectRecord],
                     root_id: int, height: int,
                     size_model: Optional[SizeModel] = None,
                     max_entries: Optional[int] = None,
                     min_entries: Optional[int] = None,
                     splitter: Callable[[Sequence[Entry], int],
                                        Tuple[List[Entry], List[Entry]]] = rstar_split,
                     forced_reinsert: bool = True) -> "RTree":
        """Adopt an already populated storage backend (deserialisation hook).

        Used by :func:`repro.storage.paged.load_tree` to reconstruct a tree
        around a file-backed page store without re-inserting anything.  The
        caller is responsible for ``root_id`` / ``height`` being consistent
        with the backend's contents (``validate`` checks the invariants).
        """
        if root_id not in store:
            raise ValueError(f"root node {root_id} not present in the store")
        tree = cls.__new__(cls)
        tree._configure(size_model, max_entries, min_entries, splitter,
                        forced_reinsert)
        tree.store = store
        tree.objects = objects
        tree.root_id = root_id
        tree.height = height
        tree._reinsert_levels = set()
        return tree

    # ------------------------------------------------------------------ #
    # public read API
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.objects)

    @property
    def root(self) -> Node:
        """The root node (without counting a page read)."""
        return self.store.peek(self.root_id)

    def node(self, node_id: int) -> Node:
        """Fetch a node by page id."""
        return self.store.get(node_id)

    def object(self, object_id: int) -> ObjectRecord:
        """Fetch an object record by id."""
        return self.objects[object_id]

    def root_entry(self) -> Entry:
        """An entry referencing the root node (the traversal starting point)."""
        return Entry(mbr=self.root.mbr() if self.root.entries else Rect.unit(),
                     child_id=self.root_id)

    def all_nodes(self) -> Iterable[Node]:
        """Iterate over every node page (backend-agnostic)."""
        return self.store.iter_nodes()

    def index_bytes(self) -> int:
        """Total byte size of the index (all nodes, by the size model)."""
        return sum(self.size_model.node_bytes(node.fanout) for node in self.all_nodes())

    def dataset_bytes(self) -> int:
        """Total byte size of all data objects."""
        return sum(record.size_bytes for record in self.objects.values())

    # ------------------------------------------------------------------ #
    # insertion
    # ------------------------------------------------------------------ #
    def _check_writable(self) -> None:
        """Reject structural mutation over a read-only storage backend.

        Checked up front so a paged, buffered backend can never be left with
        half-applied in-buffer mutations before an ``allocate``/``free``
        would have raised.
        """
        if not getattr(self.store, "writable", True):
            from repro.storage.backend import ReadOnlyStorageError
            raise ReadOnlyStorageError(
                "this tree is backed by a read-only store; reload it with "
                "copy_on_write=True (or rebuild it in memory and re-save it) "
                "to mutate")

    def insert(self, record: ObjectRecord) -> None:
        """Insert a data object into the tree."""
        self._check_writable()
        if record.object_id in self.objects:
            raise ValueError(f"duplicate object id {record.object_id}")
        self.objects[record.object_id] = record
        self._reinsert_levels = set()
        entry = Entry(mbr=record.mbr, object_id=record.object_id)
        self._insert_entry(entry, target_level=0)

    def insert_all(self, records: Iterable[ObjectRecord]) -> None:
        """Insert many objects one by one (dynamic build)."""
        for record in records:
            self.insert(record)

    def _insert_entry(self, entry: Entry, target_level: int) -> None:
        leaf = self._choose_subtree(entry.mbr, target_level)
        leaf.add(entry)
        if entry.child_id is not None:
            self.store.edit(entry.child_id).parent_id = leaf.node_id
        self._handle_overflow(leaf)
        self._adjust_upwards(leaf)

    def _choose_subtree(self, mbr: Rect, target_level: int) -> Node:
        # Every node on the chosen path is mutated later (entry added at the
        # bottom, MBRs adjusted upwards), so fetch the whole path with edit.
        node = self.store.edit(self.root_id)
        while node.level > target_level:
            best_entry = self._pick_child(node, mbr)
            node = self.store.edit(best_entry.child_id)
        return node

    def _pick_child(self, node: Node, mbr: Rect) -> Entry:
        """R* ChooseSubtree: minimize overlap enlargement at the leaf level,
        area enlargement otherwise."""
        child_level = node.level - 1
        if child_level == 0:
            best = None
            best_key = None
            for entry in node.entries:
                enlarged = entry.mbr.union(mbr)
                overlap_delta = 0.0
                for other in node.entries:
                    if other is entry:
                        continue
                    overlap_delta += (enlarged.intersection_area(other.mbr)
                                      - entry.mbr.intersection_area(other.mbr))
                key = (overlap_delta, entry.mbr.enlargement(mbr), entry.mbr.area())
                if best_key is None or key < best_key:
                    best_key = key
                    best = entry
            return best
        best = min(node.entries,
                   key=lambda e: (e.mbr.enlargement(mbr), e.mbr.area()))
        return best

    def _handle_overflow(self, node: Node) -> None:
        if node.fanout <= self.max_entries:
            return
        is_root = node.node_id == self.root_id
        if (self.forced_reinsert and not is_root
                and node.level not in self._reinsert_levels):
            self._reinsert_levels.add(node.level)
            self._forced_reinsert(node)
        else:
            self._split_node(node)

    def _forced_reinsert(self, node: Node) -> None:
        """Remove the 30 % entries farthest from the node centre and reinsert."""
        center = node.mbr().center()
        count = max(1, int(round(node.fanout * 0.3)))
        ranked = sorted(node.entries,
                        key=lambda e: e.mbr.center().distance_to(center),
                        reverse=True)
        to_reinsert = ranked[:count]
        node.entries = [e for e in node.entries if e not in to_reinsert]
        self._adjust_upwards(node)
        level = node.level
        for entry in reversed(to_reinsert):  # close-reinsert order
            self._insert_entry(entry, target_level=level)

    def _split_node(self, node: Node) -> None:
        left_entries, right_entries = self.splitter(node.entries, self.min_entries)
        sibling = self.store.allocate(level=node.level)
        node.entries = list(left_entries)
        sibling.entries = list(right_entries)
        for entry in sibling.entries:
            if entry.child_id is not None:
                self.store.edit(entry.child_id).parent_id = sibling.node_id

        if node.node_id == self.root_id:
            new_root = self.store.allocate(level=node.level + 1)
            new_root.add(Entry(mbr=node.mbr(), child_id=node.node_id))
            new_root.add(Entry(mbr=sibling.mbr(), child_id=sibling.node_id))
            node.parent_id = new_root.node_id
            sibling.parent_id = new_root.node_id
            self.root_id = new_root.node_id
            self.height += 1
            return

        parent = self.store.edit(node.parent_id)
        parent.replace_entry_for_child(node.node_id,
                                       Entry(mbr=node.mbr(), child_id=node.node_id))
        parent.add(Entry(mbr=sibling.mbr(), child_id=sibling.node_id))
        sibling.parent_id = parent.node_id
        self._handle_overflow(parent)

    def _adjust_upwards(self, node: Node) -> None:
        current = node
        while current.parent_id is not None and current.node_id in self.store:
            parent = self.store.edit(current.parent_id)
            if not current.entries:
                break
            try:
                parent.replace_entry_for_child(
                    current.node_id, Entry(mbr=current.mbr(), child_id=current.node_id))
            except KeyError:
                break
            current = parent

    # ------------------------------------------------------------------ #
    # deletion
    # ------------------------------------------------------------------ #
    def delete(self, object_id: int) -> bool:
        """Remove an object; returns True if it was present."""
        self._check_writable()
        record = self.objects.pop(object_id, None)
        if record is None:
            return False
        leaf = self._find_leaf(self.store.peek(self.root_id), record)
        if leaf is None:
            return True
        leaf = self.store.edit(leaf.node_id)
        leaf.entries = [e for e in leaf.entries if e.object_id != object_id]
        self._condense(leaf)
        return True

    def _find_leaf(self, node: Node, record: ObjectRecord) -> Optional[Node]:
        if node.is_leaf:
            if any(e.object_id == record.object_id for e in node.entries):
                return node
            return None
        for entry in node.entries:
            if entry.mbr.intersects(record.mbr):
                found = self._find_leaf(self.store.peek(entry.child_id), record)
                if found is not None:
                    return found
        return None

    def _condense(self, node: Node) -> None:
        orphaned: List[Tuple[int, Entry]] = []
        current = node
        while current.node_id != self.root_id:
            parent = self.store.edit(current.parent_id)
            if current.fanout < self.min_entries:
                parent.remove_entry_for_child(current.node_id)
                for entry in current.entries:
                    orphaned.append((current.level, entry))
                self.store.free(current.node_id)
            else:
                parent.replace_entry_for_child(
                    current.node_id, Entry(mbr=current.mbr(), child_id=current.node_id))
            current = parent
        # Shrink the root if it has a single child.
        root = self.store.peek(self.root_id)
        while not root.is_leaf and root.fanout == 1:
            only_child = self.store.edit(root.entries[0].child_id)
            only_child.parent_id = None
            self.store.free(root.node_id)
            self.root_id = only_child.node_id
            self.height -= 1
            root = only_child
        self._reinsert_levels = set()
        for level, entry in orphaned:
            self._insert_entry(entry, target_level=level)

    # ------------------------------------------------------------------ #
    # validation helpers (used heavily by the test-suite)
    # ------------------------------------------------------------------ #
    def validate(self, check_min_fill: bool = False) -> None:
        """Raise ``AssertionError`` if any structural invariant is violated.

        ``check_min_fill`` additionally enforces the minimum fanout on every
        non-root node; it is meaningful for dynamically built trees but not
        for STR bulk-loaded trees, whose last node per slice may legitimately
        be under-filled.
        """
        root = self.store.peek(self.root_id)
        assert root.parent_id is None, "root must not have a parent"
        seen_objects: List[int] = []
        leaf_levels: List[int] = []
        self._validate_node(root, expected_parent=None, seen=seen_objects,
                            leaf_levels=leaf_levels, is_root=True,
                            check_min_fill=check_min_fill)
        assert sorted(seen_objects) == sorted(self.objects.keys()), \
            "leaf entries must cover exactly the object table"
        assert len(set(leaf_levels)) <= 1, "all leaves must be at the same level"

    def _validate_node(self, node: Node, expected_parent: Optional[int],
                       seen: List[int], leaf_levels: List[int], is_root: bool,
                       check_min_fill: bool = False) -> None:
        assert node.parent_id == expected_parent, \
            f"node {node.node_id}: bad parent pointer"
        if not is_root:
            minimum = self.min_entries if check_min_fill else 1
            assert minimum <= node.fanout <= self.max_entries, \
                f"node {node.node_id}: fanout {node.fanout} out of bounds"
        else:
            assert node.fanout <= self.max_entries
        if node.is_leaf:
            leaf_levels.append(node.level)
            for entry in node.entries:
                assert entry.is_leaf_entry
                seen.append(entry.object_id)
                record = self.objects[entry.object_id]
                assert entry.mbr.contains(record.mbr)
            return
        for entry in node.entries:
            assert not entry.is_leaf_entry
            child = self.store.peek(entry.child_id)
            assert child.level == node.level - 1
            assert entry.mbr.contains(child.mbr()), \
                f"node {node.node_id}: entry MBR does not cover child {child.node_id}"
            self._validate_node(child, node.node_id, seen, leaf_levels, is_root=False,
                                check_min_fill=check_min_fill)
