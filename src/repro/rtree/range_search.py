"""Window (range) query over the R-tree."""

from __future__ import annotations

from typing import Callable, List, Optional, Set

from repro.geometry import Rect
from repro.rtree.tree import RTree


def range_search(tree: RTree, window: Rect,
                 visited_nodes: Optional[Set[int]] = None) -> List[int]:
    """Return the ids of all objects whose MBR intersects ``window``.

    Parameters
    ----------
    tree:
        The R-tree to search.
    window:
        The query rectangle.
    visited_nodes:
        Optional set collecting the ids of every node page touched by the
        traversal; the server-side proactive cache uses this to know which
        index pages "support" the answer.
    """
    results: List[int] = []
    if not tree.root.entries:
        return results
    stack = [tree.root_id]
    while stack:
        node_id = stack.pop()
        node = tree.node(node_id)
        if visited_nodes is not None:
            visited_nodes.add(node_id)
        for entry in node.entries:
            if not entry.mbr.intersects(window):
                continue
            if entry.is_leaf_entry:
                results.append(entry.object_id)
            else:
                stack.append(entry.child_id)
    return results


def range_count(tree: RTree, window: Rect) -> int:
    """Number of objects intersecting ``window`` (convenience wrapper)."""
    return len(range_search(tree, window))


def range_search_filtered(tree: RTree, window: Rect,
                          predicate: Callable[[int], bool]) -> List[int]:
    """Range search keeping only object ids accepted by ``predicate``."""
    return [object_id for object_id in range_search(tree, window) if predicate(object_id)]
