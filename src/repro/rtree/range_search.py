"""Window (range) query over the R-tree."""

from __future__ import annotations

from typing import Callable, List, Optional, Set

from repro.geometry import Rect
from repro.rtree.tree import RTree


def range_search(tree: RTree, window: Rect,
                 visited_nodes: Optional[Set[int]] = None) -> List[int]:
    """Return the ids of all objects whose MBR intersects ``window``.

    Parameters
    ----------
    tree:
        The R-tree to search.
    window:
        The query rectangle.
    visited_nodes:
        Optional set collecting the ids of every node page touched by the
        traversal; the server-side proactive cache uses this to know which
        index pages "support" the answer.
    """
    results: List[int] = []
    if not tree.root.entries:
        return results
    # The window is fixed for the whole traversal: hoist its coordinates and
    # test intersection inline instead of paying a method call per entry.
    w_min_x, w_min_y = window.min_x, window.min_y
    w_max_x, w_max_y = window.max_x, window.max_y
    node_of = tree.node
    append_result = results.append
    stack = [tree.root_id]
    push = stack.append
    while stack:
        node_id = stack.pop()
        node = node_of(node_id)
        if visited_nodes is not None:
            visited_nodes.add(node_id)
        for entry in node.entries:
            mbr = entry.mbr
            if (mbr.min_x > w_max_x or mbr.max_x < w_min_x
                    or mbr.min_y > w_max_y or mbr.max_y < w_min_y):
                continue
            object_id = entry.object_id
            if object_id is not None:
                append_result(object_id)
            else:
                push(entry.child_id)
    return results


def range_count(tree: RTree, window: Rect) -> int:
    """Number of objects intersecting ``window`` (convenience wrapper)."""
    return len(range_search(tree, window))


def range_search_filtered(tree: RTree, window: Rect,
                          predicate: Callable[[int], bool]) -> List[int]:
    """Range search keeping only object ids accepted by ``predicate``."""
    return [object_id for object_id in range_search(tree, window) if predicate(object_id)]
