"""Lint orchestration: walk paths, run checkers, collect findings.

:func:`lint_paths` is what ``repro lint`` calls; :func:`lint_source` is the
single-file core the unit tests drive directly.  Both are pure functions of
their inputs — file order is sorted, findings are reported in deterministic
order, and nothing reads clocks or global RNGs (the linter holds itself to
its own rules: ``repro lint src/repro/analysis`` must stay clean).
"""

from __future__ import annotations

import json
import os
from typing import Iterable, List, Optional, Sequence, Tuple

import repro.analysis.checkers  # noqa: F401  (populate the registry)
from repro.analysis.base import CHECKER_REGISTRY, FileContext
from repro.analysis.config import DEFAULT_CONFIG, LintConfig, package_relative
from repro.analysis.findings import Finding, findings_document, sort_findings

#: Rule id attached to files that fail to parse.
SYNTAX_ERROR_RULE = "SYN01"


def lint_source(path: str, source: str, *,
                config: Optional[LintConfig] = None,
                rules: Iterable[str] = ()) -> List[Finding]:
    """Lint one in-memory source file and return its findings.

    ``rules`` restricts the run to a subset of rule ids; the path scopes of
    ``config`` (default: the project configuration) are applied either way.
    Unused suppressions are reported as ``SUP01`` findings; unparsable
    sources yield a single ``SYN01`` finding.
    """
    config = config or DEFAULT_CONFIG
    enabled = [rule for rule in config.rules_for(package_relative(path), rules)
               if rule in CHECKER_REGISTRY]
    try:
        context = FileContext.parse(path, source, enabled)
    except SyntaxError as error:
        return [Finding(rule=SYNTAX_ERROR_RULE, path=path,
                        line=error.lineno or 1, col=error.offset or 0,
                        message=f"file does not parse: {error.msg}")]
    for rule in enabled:
        CHECKER_REGISTRY[rule](context).run()
    findings = list(context.findings)
    findings.extend(context.suppressions.unused(set(enabled), path))
    return sort_findings(findings)


def _python_files(paths: Sequence[str]) -> List[str]:
    """Every ``.py`` file under ``paths`` (files kept as-is), sorted."""
    collected = []
    for path in paths:
        if os.path.isdir(path):
            for root, directories, files in os.walk(path):
                directories.sort()
                directories[:] = [d for d in directories
                                  if d not in ("__pycache__", ".git")]
                collected.extend(os.path.join(root, name)
                                 for name in sorted(files)
                                 if name.endswith(".py"))
        else:
            collected.append(path)
    return sorted(dict.fromkeys(collected))


def lint_paths(paths: Sequence[str], *,
               config: Optional[LintConfig] = None,
               rules: Iterable[str] = ()) -> Tuple[List[Finding], int]:
    """Lint files/directories; returns ``(findings, checked_file_count)``."""
    config = config or DEFAULT_CONFIG
    findings: List[Finding] = []
    files = _python_files(paths)
    for file_path in files:
        with open(file_path, "r", encoding="utf-8") as handle:
            source = handle.read()
        findings.extend(lint_source(file_path, source,
                                    config=config, rules=rules))
    return sort_findings(findings), len(files)


def render_text(findings: Sequence[Finding], checked_files: int) -> str:
    """The human-readable report (also the CI log format)."""
    if not findings:
        return f"repro lint: {checked_files} file(s) checked, no findings"
    lines = [finding.render() for finding in findings]
    lines.append(f"repro lint: {len(findings)} finding(s) in "
                 f"{checked_files} file(s) checked")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding], checked_files: int, *,
                rules: Iterable[str]) -> str:
    """The machine-readable report (schema in ``docs/static-analysis.md``)."""
    document = findings_document(findings, rules=rules,
                                 checked_files=checked_files)
    return json.dumps(document, indent=2, sort_keys=False)


def rule_catalogue() -> List[Tuple[str, str]]:
    """``(rule_id, title)`` pairs for every registered checker, sorted."""
    return sorted((rule, checker.title)
                  for rule, checker in CHECKER_REGISTRY.items())
