"""``# repro: allow[RULE]`` suppression comments and unused-suppression detection.

The linter's findings are contracts, not suggestions, so silencing one must
be explicit and local: a suppression comment names the rule ids it waives and
covers exactly one source line.  Two placements are recognised:

* **trailing** — after code, covers findings reported on the same line::

      value = time.perf_counter()  # repro: allow[DET02] measurement only

* **standalone** — a whole-line comment, covers findings on the next
  non-comment line (a rationale may span several comment lines)::

      # repro: allow[STM01] derived aggregates are rebuilt by _register()
      def state_dict(self) -> dict:

Everything after the closing bracket is free-form rationale; write one.  A
suppression that never matched a finding of an *enabled* rule is itself
reported (rule ``SUP01``), so stale waivers cannot accumulate — the lint run
only exits 0 when the set of suppressions is exactly the set needed.
"""

from __future__ import annotations

import io
import re
import tokenize
from typing import Dict, List, Set, Tuple

from repro.analysis.findings import Finding

#: Rule id of the "unused suppression" meta-finding.  Always enabled and
#: never itself suppressible (waiving a waiver helps no one).
UNUSED_SUPPRESSION_RULE = "SUP01"

_ALLOW = re.compile(r"#\s*repro:\s*allow\[([A-Za-z0-9_,\s]+)\]")


class SuppressionSheet:
    """Per-file map of suppressed (line, rule) pairs with usage tracking."""

    def __init__(self) -> None:
        # (target_line, rule) -> line the comment itself sits on.
        self._entries: Dict[Tuple[int, str], int] = {}
        self._used: Set[Tuple[int, str]] = set()

    @classmethod
    def from_source(cls, source: str) -> "SuppressionSheet":
        """Parse every ``repro: allow`` comment out of ``source``.

        Tokenisation (not line regexes) keeps ``#`` characters inside string
        literals from being misread as comments.  Sources that fail to
        tokenise yield an empty sheet; the runner reports the syntax error
        separately.
        """
        sheet = cls()
        try:
            tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
        except (tokenize.TokenError, SyntaxError, IndentationError):
            return sheet
        standalone_lines = {token.start[0] for token in tokens
                            if token.type == tokenize.COMMENT
                            and token.line.lstrip().startswith("#")}
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _ALLOW.search(token.string)
            if match is None:
                continue
            comment_line = token.start[0]
            if comment_line in standalone_lines:
                target_line = comment_line + 1
                while target_line in standalone_lines:
                    target_line += 1
            else:
                target_line = comment_line
            for rule in match.group(1).split(","):
                rule = rule.strip().upper()
                if rule and rule != UNUSED_SUPPRESSION_RULE:
                    sheet._entries[(target_line, rule)] = comment_line
        return sheet

    def __len__(self) -> int:
        return len(self._entries)

    def suppresses(self, rule: str, line: int) -> bool:
        """True (and marks the suppression used) when ``rule@line`` is waived."""
        key = (line, rule)
        if key in self._entries:
            self._used.add(key)
            return True
        return False

    def unused(self, enabled_rules: Set[str], path: str) -> List[Finding]:
        """``SUP01`` findings for suppressions that matched nothing.

        A suppression for a rule that was not enabled this run (rule subset
        via ``--rules``, or the rule's path scope excludes this file) is
        ignored rather than reported: it may well be load-bearing for the
        full default run.
        """
        findings = []
        for (line, rule), comment_line in sorted(self._entries.items()):
            if rule not in enabled_rules:
                continue
            if (line, rule) not in self._used:
                findings.append(Finding(
                    rule=UNUSED_SUPPRESSION_RULE, path=path, line=comment_line,
                    col=0, message=f"unused suppression: no {rule} finding on "
                                   f"line {line}; remove the allow comment"))
        return findings
