"""Path-scoped rule configuration for the determinism linter.

Each rule applies to a set of files described by shell-style patterns over
the *package-relative* path (the part of the file path starting at the
``repro/`` package directory; files outside the package match their posix
path as given).  Patterns use :mod:`fnmatch` semantics, where ``*`` crosses
``/`` — ``repro/core/*`` therefore covers the whole subtree.

The project defaults below encode the determinism contracts: wall-clock
reads are legal only in the perf harness and the CLI, set-iteration order
only matters in the decision-affecting packages, slots are enforced where
the PR-2 profiles showed attribute-access heat, and the strict-typing
companion rule mirrors the mypy strict packages.
"""

from __future__ import annotations

from dataclasses import dataclass
from fnmatch import fnmatch
from typing import Dict, Iterable, Tuple

from repro._compat import DATACLASS_SLOTS


@dataclass(frozen=True, **DATACLASS_SLOTS)
class RuleScope:
    """Which package-relative paths one rule applies to."""

    include: Tuple[str, ...] = ("*",)
    exclude: Tuple[str, ...] = ()

    def applies_to(self, relative_path: str) -> bool:
        """True when the rule is enabled for ``relative_path``."""
        if not any(fnmatch(relative_path, pattern) for pattern in self.include):
            return False
        return not any(fnmatch(relative_path, pattern) for pattern in self.exclude)


@dataclass(frozen=True, **DATACLASS_SLOTS)
class LintConfig:
    """Rule-id → :class:`RuleScope` table (rules absent here never run)."""

    scopes: Tuple[Tuple[str, RuleScope], ...]

    @classmethod
    def make(cls, scopes: Dict[str, RuleScope]) -> "LintConfig":
        """Build a config from a dict (stored sorted for determinism)."""
        return cls(scopes=tuple(sorted(scopes.items())))

    def rules(self) -> Tuple[str, ...]:
        """All configured rule ids, sorted."""
        return tuple(rule for rule, _ in self.scopes)

    def rules_for(self, relative_path: str,
                  only: Iterable[str] = ()) -> Tuple[str, ...]:
        """Rule ids enabled for one file (optionally restricted to ``only``)."""
        wanted = {rule.upper() for rule in only}
        return tuple(rule for rule, scope in self.scopes
                     if (not wanted or rule in wanted)
                     and scope.applies_to(relative_path))


#: Packages whose object layout is hot enough that ``__slots__`` is required
#: (the PR-2 geometry/eviction profiles) — SLT01's scope.
HOT_PATH_PACKAGES = ("repro/geometry/*", "repro/rtree/*", "repro/core/*")

#: Packages held to the strict end of the typing gate — TYP01's scope and
#: the per-module strict sections in ``mypy.ini`` must name the same set.
STRICT_TYPING_PACKAGES = ("repro/geometry/*", "repro/rtree/*",
                          "repro/storage/*", "repro/updates/*",
                          "repro/analysis/*", "repro/net/*",
                          "repro/obs/*")

#: Packages wired for instrumentation, where every wall-clock read must go
#: through ``repro.obs.instrument.perf_clock`` — OBS01's scope.  Note that
#: unlike DET02 this *includes* ``perf/``: the harness times things by
#: design, but it must do so through the audited funnel (or carry a
#: site-level waiver).
INSTRUMENTED_PACKAGES = ("repro/sim/*", "repro/core/*", "repro/sharding/*",
                         "repro/net/*", "repro/storage/*", "repro/updates/*",
                         "repro/perf/*")

#: Packages where iteration order feeds query results, eviction choices or
#: digests — DET03's scope.
DECISION_AFFECTING_PACKAGES = ("repro/core/*", "repro/rtree/*",
                               "repro/sharding/*", "repro/updates/*")

#: The crash-safety write paths: everything here must write through
#: :mod:`repro.storage.atomic` or the WAL — DUR01's scope.
DURABLE_WRITE_PACKAGES = ("repro/storage/*", "repro/sim/restart.py")

DEFAULT_CONFIG = LintConfig.make({
    "DET01": RuleScope(),
    "DET02": RuleScope(exclude=("repro/perf/*", "repro/cli.py")),
    "DET03": RuleScope(include=DECISION_AFFECTING_PACKAGES),
    "DET04": RuleScope(),
    "DUR01": RuleScope(include=DURABLE_WRITE_PACKAGES),
    "FLT01": RuleScope(),
    "OBS01": RuleScope(include=INSTRUMENTED_PACKAGES),
    "STM01": RuleScope(),
    "SLT01": RuleScope(include=HOT_PATH_PACKAGES),
    "PRT01": RuleScope(),
    "TYP01": RuleScope(include=STRICT_TYPING_PACKAGES),
})


def package_relative(path: str) -> str:
    """The scope-matching form of ``path``.

    The posix path from the last ``repro`` directory component onward when
    one exists (``src/repro/core/cache.py`` → ``repro/core/cache.py``), so
    scoping is stable no matter where the tree is checked out or which
    prefix the user passed on the command line.  Paths without a ``repro``
    component are matched as given — the fixture trees under
    ``tests/analysis/fixtures/`` exploit this by mirroring the package
    layout to opt fixtures into path-scoped rules.
    """
    posix = path.replace("\\", "/")
    parts = posix.split("/")
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            return "/".join(parts[index:])
    return posix
