"""Durability checker: DUR01 (raw writable ``open`` on the durable paths).

The storage package's crash-safety contract has exactly two legal write
paths: whole-file artefacts go through :mod:`repro.storage.atomic` (temp +
fsync + rename) and incremental commits go through the WAL
(:mod:`repro.storage.wal`), whose append-only handle is the one sanctioned
in-place writer.  A bare ``open(path, "w")`` anywhere else on those paths
is a torn-write waiting for a crash: the file can be half-written when the
process dies and there is no tail-recovery story for it.  DUR01 flags such
opens so new code in the durable packages is atomic-or-WAL by construction;
the two sanctioned sites carry ``# repro: allow[DUR01]`` waivers explaining
why in-place access is safe there.
"""

from __future__ import annotations

import ast
from typing import Optional

from repro.analysis.base import Checker, register

#: Mode characters that make an ``open`` able to create or mutate bytes.
_WRITE_MODE_CHARS = frozenset("wax+")

#: Canonical dotted names that are the builtin ``open`` in disguise.
_OPEN_ALIASES = frozenset({"io.open", "os.fdopen"})


def _mode_argument(node: ast.Call) -> Optional[ast.AST]:
    """The mode argument expression of an ``open``-style call, if present."""
    if len(node.args) > 1:
        return node.args[1]
    for keyword in node.keywords:
        if keyword.arg == "mode":
            return keyword.value
    return None


@register
class DurableWritePathChecker(Checker):
    """DUR01 — raw writable ``open()`` bypassing the atomic-write/WAL helpers.

    Scoped to ``repro/storage/*`` and ``repro/sim/restart.py`` (the durable
    write paths).  Flags calls to ``open`` / ``io.open`` / ``os.fdopen``
    whose mode can write — any of ``w``/``a``/``x``/``+`` — or whose mode
    is not a string literal (unprovably read-only).  Read-only opens and
    the waivered append-only WAL handle stay silent.
    """

    rule = "DUR01"
    title = "raw writable open() on a durable path (use atomic/WAL helpers)"

    def visit_Call(self, node: ast.Call) -> None:
        if self._is_open(node):
            mode = _mode_argument(node)
            if mode is None:
                pass  # no mode ⇒ "r": read-only
            elif (isinstance(mode, ast.Constant)
                    and isinstance(mode.value, str)):
                if _WRITE_MODE_CHARS & set(mode.value):
                    self.report(node,
                                f"open(..., {mode.value!r}) can tear on "
                                f"crash; write through repro.storage.atomic "
                                f"or the WAL, or waive with a "
                                f"why-this-is-crash-safe comment")
            else:
                self.report(node, "open() with a computed mode cannot be "
                                  "proven read-only on a durable path; "
                                  "pass a literal mode")
        self.generic_visit(node)

    def _is_open(self, node: ast.Call) -> bool:
        if isinstance(node.func, ast.Name) and node.func.id == "open":
            # The builtin, unless something imported shadows the name.
            return self.context.imports.resolve(node.func) in (None, "io.open")
        return self.context.imports.resolve(node.func) in _OPEN_ALIASES
