"""Value-comparison checkers: FLT01 (float equality) and TYP01 (annotations).

FLT01 guards the digest contracts: a float ``==`` that holds on one
platform's FMA/rounding behaviour and not another's silently breaks
byte-identical replay.  TYP01 is the locally-runnable core of the mypy
strict gate — CI runs full mypy, but missing annotations are caught at
``repro lint`` speed without the dependency.
"""

from __future__ import annotations

import ast

from repro.analysis.base import Checker, register

#: Attribute chains that are float constants for FLT01 purposes.
_FLOAT_ATTRIBUTES = frozenset({"math.inf", "math.nan", "math.pi", "math.e",
                               "math.tau"})


def _is_float_expression(checker: Checker, node: ast.AST) -> bool:
    """Syntactically float-valued: float literals, float(), true division."""
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        return _is_float_expression(checker, node.operand)
    if (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
            and node.func.id == "float"):
        return True
    if isinstance(node, ast.BinOp):
        if isinstance(node.op, ast.Div):
            return True
        return (_is_float_expression(checker, node.left)
                or _is_float_expression(checker, node.right))
    resolved = checker.context.imports.resolve(node)
    return resolved in _FLOAT_ATTRIBUTES


@register
class FloatEqualityChecker(Checker):
    """FLT01 — ``==`` / ``!=`` against a float-valued expression.

    Exact float comparison is only sound when both sides are *exact by
    construction* (copied, never recomputed through arithmetic).  Such
    sites carry a ``# repro: allow[FLT01]`` waiver stating why exactness
    holds; everything else compares with an epsilon or an order predicate
    (``<=``), which is also how the two sites this rule originally flagged
    were rewritten (``Rect.difference``, the RD dataset's degenerate-MBR
    guard).
    """

    rule = "FLT01"
    title = "float ==/!= comparison outside exact-by-construction sites"

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left] + list(node.comparators)
        for index, operator in enumerate(node.ops):
            if not isinstance(operator, (ast.Eq, ast.NotEq)):
                continue
            left, right = operands[index], operands[index + 1]
            if (_is_float_expression(self, left)
                    or _is_float_expression(self, right)):
                self.report(node, "exact float ==/!= is rounding-fragile; "
                                  "compare with an epsilon/<= form or waive "
                                  "with a why-exactness-holds comment")
        self.generic_visit(node)


@register
class AnnotationChecker(Checker):
    """TYP01 — unannotated function signatures in the strict-typing packages.

    The packages mypy checks strictly (``geometry/``, ``rtree/``,
    ``storage/``, ``updates/``, ``analysis/``) must annotate every
    parameter and return type; this is the subset of the gate that runs
    without mypy installed, so a fresh checkout still enforces it via
    ``repro lint``.  Lambdas and ``self``/``cls`` are exempt.
    """

    rule = "TYP01"
    title = "missing parameter/return annotations in strict-typing packages"

    def _check_function(self, node: ast.AST) -> None:
        args = node.args  # type: ignore[attr-defined]
        positional = list(args.posonlyargs) + list(args.args)
        missing = []
        for index, arg in enumerate(positional):
            if index == 0 and arg.arg in ("self", "cls"):
                continue
            if arg.annotation is None:
                missing.append(arg.arg)
        missing.extend(arg.arg for arg in args.kwonlyargs if arg.annotation is None)
        for variadic in (args.vararg, args.kwarg):
            if variadic is not None and variadic.annotation is None:
                missing.append(variadic.arg)
        if missing:
            self.report(node, f"unannotated parameter(s) "
                              f"{', '.join(sorted(missing))} in a "
                              "strict-typing package")
        if node.returns is None:  # type: ignore[attr-defined]
            name = node.name  # type: ignore[attr-defined]
            self.report(node, f"missing return annotation on {name}() in a "
                              "strict-typing package")
        self.generic_visit(node)

    visit_FunctionDef = _check_function
    visit_AsyncFunctionDef = _check_function
