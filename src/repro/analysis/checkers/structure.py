"""Structural invariant checkers: STM01, SLT01 and PRT01.

These three rules pin class-shape contracts that runtime tests only catch
by luck: a ``state_dict`` that silently misses a newly added field (the
PR-3/PR-4 digest-stability hazard), a hot-path dataclass that regresses to
``__dict__`` storage, and a protocol implementer that drifts off the
surface the rest of the system programs against.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.base import Checker, register

#: Protocol surfaces checked by PRT01: surface name → members every
#: implementer must define.  ``StorageBackend`` implementers are found by
#: base-class name; classes re-implementing the ``ServerQueryProcessor``
#: surface without subclassing (duck-typed drop-ins like ``ShardRouter``)
#: are enumerated explicitly.
PROTOCOL_SURFACES: Dict[str, Tuple[str, ...]] = {
    "StorageBackend": ("allocate", "get", "peek", "free", "node_ids",
                       "__contains__", "__len__", "reads", "writes"),
    "ServerQueryProcessor": ("execute", "root_id", "root_mbr",
                             "partition_tree_for"),
}

#: Duck-typed implementers: class name → surface it must satisfy.
DUCK_TYPED_IMPLEMENTERS: Dict[str, str] = {
    "ShardRouter": "ServerQueryProcessor",
}


def _decorator_callable(decorator: ast.AST) -> Optional[ast.AST]:
    """The underlying callable of a decorator (unwrapping a Call)."""
    return decorator.func if isinstance(decorator, ast.Call) else decorator


def _is_dataclass_decorator(decorator: ast.AST) -> bool:
    target = _decorator_callable(decorator)
    if isinstance(target, ast.Name):
        return target.id == "dataclass"
    if isinstance(target, ast.Attribute):
        return target.attr == "dataclass"
    return False


def _string_elements(node: ast.AST) -> List[str]:
    """String constants inside a tuple/list literal (``__slots__`` values)."""
    if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        return [element.value for element in node.elts
                if isinstance(element, ast.Constant)
                and isinstance(element.value, str)]
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return [node.value]
    return []


def _declared_fields(class_node: ast.ClassDef) -> List[str]:
    """The state-carrying fields of a class, best-effort and in source order.

    Precedence: an explicit ``__slots__`` wins; else a ``@dataclass`` body's
    annotated fields (``ClassVar`` excluded); else the ``self.X = ...``
    assignments in ``__init__``.  Dunder names are never state.
    """
    for statement in class_node.body:
        if (isinstance(statement, ast.Assign)
                and any(isinstance(t, ast.Name) and t.id == "__slots__"
                        for t in statement.targets)):
            return [n for n in _string_elements(statement.value)
                    if not n.startswith("__")]
    if any(_is_dataclass_decorator(d) for d in class_node.decorator_list):
        fields = []
        for statement in class_node.body:
            if (isinstance(statement, ast.AnnAssign)
                    and isinstance(statement.target, ast.Name)
                    and "ClassVar" not in ast.dump(statement.annotation)):
                fields.append(statement.target.id)
        return [n for n in fields if not n.startswith("__")]
    for statement in class_node.body:
        if (isinstance(statement, ast.FunctionDef)
                and statement.name == "__init__"):
            fields = []
            for node in ast.walk(statement):
                target = None
                if isinstance(node, ast.Assign) and node.targets:
                    target = node.targets[0]
                elif isinstance(node, ast.AnnAssign):
                    target = node.target
                if (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                        and not target.attr.startswith("__")
                        and target.attr not in fields):
                    fields.append(target.attr)
            return fields
    return []


def _captured_keys(function: ast.FunctionDef) -> Set[str]:
    """Every string constant in a ``state_dict`` body (the captured keys)."""
    captured: Set[str] = set()
    for node in ast.walk(function):
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            captured.add(node.value)
    return captured


@register
class StateDictCoverageChecker(Checker):
    """STM01 — ``state_dict()`` that does not cover the class's fields.

    Warm restarts and the sharded save/load path reconstruct objects from
    ``state_dict`` output and assert digest equality; a field added to the
    class but not to the snapshot silently diverges on the first resume.
    The check is key-name based: a field counts as captured when its name
    (leading underscores stripped) appears as a string constant anywhere in
    the ``state_dict`` body.  Deliberately excluded fields — derived
    aggregates rebuilt on load, config injected by the constructor —
    carry a ``# repro: allow[STM01]`` waiver naming them.
    """

    rule = "STM01"
    title = "state_dict() misses __slots__/dataclass/__init__ fields"

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        state_dict = next(
            (item for item in node.body
             if isinstance(item, ast.FunctionDef) and item.name == "state_dict"),
            None)
        builds_dict = state_dict is not None and any(
            isinstance(inner, ast.Dict) for inner in ast.walk(state_dict))
        if builds_dict:
            captured = _captured_keys(state_dict)
            if captured:  # a stub that raises captures nothing: skip
                missing = [field for field in _declared_fields(node)
                           if field not in captured
                           and field.lstrip("_") not in captured]
                if missing:
                    self.report(state_dict,
                                f"state_dict() of {node.name} does not capture "
                                f"field(s) {', '.join(missing)}; snapshot them "
                                "or waive with the reason they are excluded")
        self.generic_visit(node)


@register
class SlotsChecker(Checker):
    """SLT01 — hot-path dataclass without ``**DATACLASS_SLOTS``.

    The PR-2 profiles showed ``__dict__`` attribute access dominating the
    geometry and eviction loops; dataclasses in the hot packages therefore
    opt into ``__slots__`` via ``repro._compat.DATACLASS_SLOTS`` (which
    degrades gracefully on interpreters without ``slots=True``).  A class
    that must keep ``__dict__`` (e.g. it is monkeypatched in tests or
    subclassed with ad-hoc attributes) carries a waiver saying so.
    """

    rule = "SLT01"
    title = "hot-path dataclass missing **DATACLASS_SLOTS"

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        for decorator in node.decorator_list:
            if not _is_dataclass_decorator(decorator):
                continue
            if isinstance(decorator, ast.Call) and self._has_slots(decorator):
                continue
            self.report(decorator, f"dataclass {node.name} in a hot-path "
                                   "package should pass **DATACLASS_SLOTS "
                                   "(repro._compat)")
        self.generic_visit(node)

    @staticmethod
    def _has_slots(decorator: ast.Call) -> bool:
        for keyword in decorator.keywords:
            if keyword.arg == "slots":
                return True
            if keyword.arg is None:  # a ``**mapping`` splat
                dumped = ast.dump(keyword.value)
                if "DATACLASS_SLOTS" in dumped:
                    return True
        return False


@register
class ProtocolSurfaceChecker(Checker):
    """PRT01 — protocol implementers missing surface members.

    ``StorageBackend`` subclasses must implement the full abstract surface
    (plus the ``reads``/``writes`` logical counters), and duck-typed
    ``ServerQueryProcessor`` drop-ins (``ShardRouter``) must keep the
    query-execution surface the sessions program against.  A member counts
    as defined when it is a method, a class-level assignment or a
    ``self.X = ...`` in ``__init__``.
    """

    rule = "PRT01"
    title = "protocol implementer missing surface members"

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        surface = self._surface_for(node)
        if surface is not None:
            surface_name, members = surface
            defined = self._defined_members(node)
            missing = [member for member in members if member not in defined]
            if missing:
                self.report(node, f"{node.name} implements the {surface_name} "
                                  f"surface but does not define "
                                  f"{', '.join(missing)}")
        self.generic_visit(node)

    @staticmethod
    def _surface_for(node: ast.ClassDef) -> Optional[Tuple[str, Tuple[str, ...]]]:
        if node.name in PROTOCOL_SURFACES:
            return None  # the defining class, not an implementer
        for base in node.bases:
            name = base.attr if isinstance(base, ast.Attribute) else (
                base.id if isinstance(base, ast.Name) else None)
            if name in PROTOCOL_SURFACES:
                return name, PROTOCOL_SURFACES[name]
        duck_surface = DUCK_TYPED_IMPLEMENTERS.get(node.name)
        if duck_surface is not None:
            return duck_surface, PROTOCOL_SURFACES[duck_surface]
        return None

    @staticmethod
    def _defined_members(node: ast.ClassDef) -> Set[str]:
        defined: Set[str] = set()
        for statement in node.body:
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                defined.add(statement.name)
                if statement.name == "__init__":
                    for inner in ast.walk(statement):
                        target = None
                        if isinstance(inner, ast.Assign) and inner.targets:
                            target = inner.targets[0]
                        elif isinstance(inner, ast.AnnAssign):
                            target = inner.target
                        if (isinstance(target, ast.Attribute)
                                and isinstance(target.value, ast.Name)
                                and target.value.id == "self"):
                            defined.add(target.attr)
            elif isinstance(statement, ast.Assign):
                defined.update(t.id for t in statement.targets
                               if isinstance(t, ast.Name))
            elif (isinstance(statement, ast.AnnAssign)
                    and isinstance(statement.target, ast.Name)):
                defined.add(statement.target.id)
        return defined
