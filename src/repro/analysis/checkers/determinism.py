"""Determinism checkers DET01–DET04.

Every reproducibility contract this project ships — byte-identical
``--shards 1`` runs, digest-equal warm restarts, oracle-exact versioned
consistency — dies the moment hidden global state leaks into a decision
path.  These rules pin the four leak classes we have actually been bitten
by (or nearly): the process-global RNG, wall clocks, set iteration order
and ``id()``-based tie-breaks.
"""

from __future__ import annotations

import ast
from typing import Optional

from repro.analysis.base import Checker, register

#: Module-level `random` attributes that are legitimate even under DET01:
#: constructing an explicitly seeded generator is the approved pattern.
_RANDOM_CONSTRUCTORS = frozenset({"random.Random", "random.SystemRandom"})

#: numpy RNG constructors that take an explicit seed argument.
_NUMPY_CONSTRUCTORS = frozenset({"numpy.random.default_rng",
                                 "numpy.random.RandomState",
                                 "numpy.random.Generator"})

#: Wall-clock reads (canonical dotted names after import resolution).
_WALL_CLOCKS = frozenset({
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.process_time", "time.process_time_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})

#: Builtins whose call argument is iterated eagerly (DET03 contexts).
_ITERATING_BUILTINS = frozenset({"list", "tuple", "iter", "enumerate"})

#: Callables whose ``key=`` argument orders or tie-breaks elements (DET04).
_ORDERING_CALLABLES = frozenset({"sorted", "min", "max"})


@register
class UnseededRandomChecker(Checker):
    """DET01 — calls into the process-global RNG.

    ``random.random()``, ``random.shuffle(...)``, ``from random import
    choice; choice(...)`` and the ``numpy.random`` module-level equivalents
    all read hidden global state: two fleets constructed in a different
    order draw different numbers and the run is no longer a pure function
    of its seeds.  RNGs must flow from an explicitly seeded
    ``random.Random`` handed down by the caller.  Constructing such a
    generator (``random.Random(seed)``) is the approved pattern and is not
    flagged.
    """

    rule = "DET01"
    title = "module-level random.* / numpy.random call (unseeded global RNG)"

    def visit_Call(self, node: ast.Call) -> None:
        resolved = self.context.imports.resolve(node.func)
        if resolved is not None:
            if (resolved.startswith("random.")
                    and resolved not in _RANDOM_CONSTRUCTORS):
                self.report(node, f"call to the global RNG ({resolved}); "
                                  "thread an explicitly seeded random.Random "
                                  "through instead")
            elif (resolved.startswith("numpy.random.")
                    and resolved not in _NUMPY_CONSTRUCTORS):
                self.report(node, f"call to the global numpy RNG ({resolved}); "
                                  "use numpy.random.default_rng(seed)")
        self.generic_visit(node)


@register
class WallClockChecker(Checker):
    """DET02 — wall-clock reads outside the perf harness and the CLI.

    Simulated time is the only clock the models may consult; a
    ``time.time()`` or ``perf_counter()`` in a cost or decision path makes
    results depend on host load.  Measurement-only uses (CPU accounting
    that feeds *reported* metrics but never a decision) carry a
    ``# repro: allow[DET02]`` waiver stating exactly that.
    """

    rule = "DET02"
    title = "wall-clock read outside perf/ and cli.py"

    def visit_Call(self, node: ast.Call) -> None:
        resolved = self.context.imports.resolve(node.func)
        if resolved in _WALL_CLOCKS:
            self.report(node, f"wall-clock read ({resolved}); simulation "
                              "logic must use simulated time")
        self.generic_visit(node)


def _is_set_expression(node: ast.AST) -> bool:
    """Syntactic set producers: literals, comprehensions, set()/frozenset()."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset")):
        return True
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.BitOr, ast.BitAnd,
                                                            ast.BitXor, ast.Sub)):
        return _is_set_expression(node.left) or _is_set_expression(node.right)
    return False


@register
class SetIterationChecker(Checker):
    """DET03 — iteration over a set expression in decision-affecting code.

    Set iteration order is salted per process; a ``for`` loop (or
    comprehension, or ``list(...)`` materialisation) over a set literal,
    set comprehension or ``set()``/``frozenset()`` call in ``core/``,
    ``rtree/``, ``sharding/`` or ``updates/`` leaks that order into
    decisions unless wrapped in ``sorted(...)``.  Only syntactic set
    expressions are detected — iterating a variable that merely *holds*
    a set needs type inference — so the rule is a tripwire, not a proof.
    """

    rule = "DET03"
    title = "iteration over a set expression without sorted(...)"

    _MESSAGE = ("set iteration order is nondeterministic; wrap the set in "
                "sorted(...) before iterating")

    def _check_iterable(self, iterable: ast.AST) -> None:
        if _is_set_expression(iterable):
            self.report(iterable, self._MESSAGE)

    def visit_For(self, node: ast.For) -> None:
        self._check_iterable(node.iter)
        self.generic_visit(node)

    def _visit_comprehension(self, node: ast.AST) -> None:
        for generator in node.generators:  # type: ignore[attr-defined]
            self._check_iterable(generator.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension
    visit_DictComp = _visit_comprehension

    def visit_Call(self, node: ast.Call) -> None:
        if (isinstance(node.func, ast.Name)
                and node.func.id in _ITERATING_BUILTINS and node.args):
            self._check_iterable(node.args[0])
        self.generic_visit(node)


def _uses_identity(node: ast.AST) -> Optional[ast.AST]:
    """The first ``id(...)``/``hash(...)`` call (or bare reference) inside ``node``."""
    if isinstance(node, ast.Name) and node.id in ("id", "hash"):
        return node
    for child in ast.walk(node):
        if (isinstance(child, ast.Call) and isinstance(child.func, ast.Name)
                and child.func.id in ("id", "hash")):
            return child
    return None


@register
class IdentityOrderingChecker(Checker):
    """DET04 — ``id()`` / default ``hash()`` as an ordering or tie-break key.

    ``id()`` is an address and the default ``hash()`` inherits it (or is
    salted for strings): both differ across runs, so a
    ``sorted(..., key=id)`` or a lambda key touching either turns a stable
    ordering into an allocation-order lottery.  Order by a domain key
    (object id, page id, coordinates) instead.
    """

    rule = "DET04"
    title = "id()/hash() used as an ordering or tie-break key"

    def visit_Call(self, node: ast.Call) -> None:
        is_ordering = (isinstance(node.func, ast.Name)
                       and node.func.id in _ORDERING_CALLABLES)
        is_sort_method = (isinstance(node.func, ast.Attribute)
                          and node.func.attr == "sort")
        if is_ordering or is_sort_method:
            for keyword in node.keywords:
                if keyword.arg != "key":
                    continue
                culprit = _uses_identity(keyword.value)
                if culprit is not None:
                    self.report(keyword.value,
                                "ordering key built on id()/hash() varies "
                                "across runs; order by a domain key instead")
        self.generic_visit(node)
