"""Observability checker OBS01.

The obs layer (``repro.obs.instrument.perf_clock``) is the single audited
funnel for wall-clock reads in the instrumented packages.  A direct
``time.perf_counter()`` next to it re-opens the very hole the funnel
closed: timing that silently bypasses the instrument cannot be switched
off for determinism audits and never shows up in traces.  OBS01 therefore
rides the same resolver as DET02 but with the *opposite* scope bias — it
covers ``perf/`` (which DET02 exempts wholesale) so even the harness has
to either go through ``perf_clock`` or carry an explicit waiver.
"""

from __future__ import annotations

import ast

from repro.analysis.base import Checker, register
from repro.analysis.checkers.determinism import _WALL_CLOCKS


@register
class DirectClockChecker(Checker):
    """OBS01 — raw wall-clock read bypassing the obs funnel.

    In packages wired for instrumentation, every wall-clock read must go
    through :func:`repro.obs.instrument.perf_clock` so the obs layer stays
    the one place timing enters the system.  Measurement sites that truly
    cannot use the funnel (e.g. timing the funnel itself) carry a
    ``# repro: allow[OBS01]`` waiver saying why.
    """

    rule = "OBS01"
    title = "direct wall-clock read bypassing repro.obs.instrument.perf_clock"

    def visit_Call(self, node: ast.Call) -> None:
        resolved = self.context.imports.resolve(node.func)
        if resolved in _WALL_CLOCKS:
            self.report(node, f"direct wall-clock read ({resolved}); route "
                              "timing through repro.obs.instrument.perf_clock")
        self.generic_visit(node)
