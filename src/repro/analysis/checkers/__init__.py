"""The project-specific checker suite (importing a module registers its rules).

Rule id prefixes group the catalogue: ``DET`` (determinism), ``FLT``
(floating point), ``STM``/``SLT``/``PRT`` (structural invariants), ``DUR``
(crash-safe write paths) and ``TYP`` (the locally-runnable half of the
typing gate).  See ``docs/static-analysis.md`` for the full catalogue with
rationale.
"""

from __future__ import annotations

from repro.analysis.checkers import (  # noqa: F401  (registration side effect)
    determinism,
    durability,
    observability,
    structure,
    values,
)
from repro.analysis.base import CHECKER_REGISTRY

__all__ = ["CHECKER_REGISTRY"]
