"""Finding records produced by the determinism/invariant linter.

A :class:`Finding` pins one rule violation to a file position.  Findings are
plain frozen dataclasses so checkers can emit them cheaply, the runner can
sort and deduplicate them deterministically, and the CLI can render them as
``path:line:col RULE message`` text or as the JSON schema the CI lint job
uploads as an artifact (see ``docs/static-analysis.md``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from repro._compat import DATACLASS_SLOTS

#: Version stamp of the JSON findings document (bump on schema changes).
JSON_SCHEMA_VERSION = 1


@dataclass(frozen=True, **DATACLASS_SLOTS)
class Finding:
    """One rule violation at one source position."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def sort_key(self) -> Tuple[str, int, int, str, str]:
        """Deterministic report order: position first, then rule id."""
        return (self.path, self.line, self.col, self.rule, self.message)

    def as_dict(self) -> Dict[str, object]:
        """The finding as JSON-serialisable primitives."""
        return {"rule": self.rule, "path": self.path, "line": self.line,
                "col": self.col, "message": self.message}

    def render(self) -> str:
        """``path:line:col: RULE message`` (the text output format)."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


def sort_findings(findings: Iterable[Finding]) -> List[Finding]:
    """Findings in deterministic report order."""
    return sorted(findings, key=Finding.sort_key)


def findings_document(findings: Iterable[Finding], *, rules: Iterable[str],
                      checked_files: int) -> Dict[str, object]:
    """The JSON findings document (schema version :data:`JSON_SCHEMA_VERSION`).

    Keys: ``version``, ``tool``, ``rules`` (the rule ids that were enabled),
    ``checked_files``, ``findings`` (sorted), and ``counts`` (per-rule totals
    for the rules that fired).
    """
    ordered = sort_findings(findings)
    counts: Dict[str, int] = {}
    for finding in ordered:
        counts[finding.rule] = counts.get(finding.rule, 0) + 1
    return {
        "version": JSON_SCHEMA_VERSION,
        "tool": "repro lint",
        "rules": sorted(rules),
        "checked_files": checked_files,
        "findings": [finding.as_dict() for finding in ordered],
        "counts": {rule: counts[rule] for rule in sorted(counts)},
    }
