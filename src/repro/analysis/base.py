"""Checker base class, per-file context and the rule registry.

A checker is an :class:`ast.NodeVisitor` bound to one rule id.  The runner
parses each file once into a :class:`FileContext` (source, AST, import map,
suppression sheet) and runs every enabled checker over that shared context;
checkers call :meth:`Checker.report` and the context routes the finding
through the suppression sheet.

The :class:`ImportMap` gives checkers *canonical dotted names* for call
targets — ``from time import perf_counter as pc; pc()`` resolves to
``time.perf_counter`` — so rules match what is called, not how the import
happened to be spelled.
"""

from __future__ import annotations

import ast
from typing import Callable, Dict, List, Optional, Type

from repro.analysis.config import package_relative
from repro.analysis.findings import Finding
from repro.analysis.suppressions import SuppressionSheet


class ImportMap:
    """Local-name → canonical dotted-path resolution for one module."""

    def __init__(self, tree: ast.AST) -> None:
        self._modules: Dict[str, str] = {}
        self._names: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    self._modules[local] = alias.name if alias.asname else local
            elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self._names[local] = f"{node.module}.{alias.name}"

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Canonical dotted path of a ``Name``/``Attribute`` chain, or None.

        Only chains rooted at an imported name resolve; attribute access on
        local objects (``self.rng.random``) deliberately resolves to None —
        instance-owned RNGs and clocks are exactly the seeded/injected kind
        the determinism rules approve of.
        """
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self._names.get(node.id) or self._modules.get(node.id)
        if root is None:
            return None
        return ".".join([root] + parts[::-1])


class FileContext:
    """Everything the checkers need to know about one source file."""

    def __init__(self, path: str, source: str, tree: ast.Module,
                 enabled_rules: Optional[List[str]] = None) -> None:
        self.path = path
        self.relative_path = package_relative(path)
        self.source = source
        self.tree = tree
        self.imports = ImportMap(tree)
        self.suppressions = SuppressionSheet.from_source(source)
        self.enabled_rules = list(enabled_rules or [])
        self.findings: List[Finding] = []

    @classmethod
    def parse(cls, path: str, source: str,
              enabled_rules: Optional[List[str]] = None) -> "FileContext":
        """Parse ``source`` (raises ``SyntaxError`` on unparsable input)."""
        return cls(path, source, ast.parse(source, filename=path), enabled_rules)

    def add(self, rule: str, node: ast.AST, message: str) -> None:
        """Record a finding unless a suppression comment waives it."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        if self.suppressions.suppresses(rule, line):
            return
        self.findings.append(Finding(rule=rule, path=self.path, line=line,
                                     col=col, message=message))


class Checker(ast.NodeVisitor):
    """Base class for one lint rule.

    Subclasses set :attr:`rule` (the id findings carry) and :attr:`title`
    (the one-line catalogue description) and implement ``visit_*`` methods,
    reporting via :meth:`report`.  One checker instance is created per file.
    """

    rule: str = ""
    title: str = ""

    def __init__(self, context: FileContext) -> None:
        self.context = context

    def run(self) -> None:
        """Visit the file's AST (override for non-visitor checkers)."""
        self.visit(self.context.tree)

    def report(self, node: ast.AST, message: str) -> None:
        """Emit one finding for this checker's rule."""
        self.context.add(self.rule, node, message)


#: The registry the runner and the CLI rule catalogue are built from.
CHECKER_REGISTRY: Dict[str, Type[Checker]] = {}


def register(checker_class: Type[Checker]) -> Type[Checker]:
    """Class decorator adding a checker to :data:`CHECKER_REGISTRY`."""
    if not checker_class.rule:
        raise ValueError(f"{checker_class.__name__} has no rule id")
    if checker_class.rule in CHECKER_REGISTRY:
        raise ValueError(f"duplicate checker for rule {checker_class.rule}")
    CHECKER_REGISTRY[checker_class.rule] = checker_class
    return checker_class


def is_call_to(imports: ImportMap, node: ast.Call,
               predicate: Callable[[str], bool]) -> bool:
    """True when ``node`` calls a resolvable dotted name satisfying ``predicate``."""
    resolved = imports.resolve(node.func)
    return resolved is not None and predicate(resolved)
