"""``repro.analysis`` — the AST-based determinism & invariant linter.

Every guarantee this reproduction makes is a determinism contract:
byte-identical ``--shards 1`` runs, digest-equal warm restarts,
oracle-exact versioned consistency.  The equivalence suites enforce those
contracts at runtime; this package enforces the *bug classes that break
them* at diff time — unseeded RNG calls, wall-clock reads in cost paths,
set-order iteration, identity-based tie-breaks, fragile float equality,
under-captured ``state_dict``s, missing ``__slots__`` and protocol-surface
drift.  ``repro lint`` is the CLI entry point; ``docs/static-analysis.md``
is the rule catalogue.
"""

from repro.analysis.base import CHECKER_REGISTRY, Checker, FileContext, register
from repro.analysis.config import (
    DEFAULT_CONFIG,
    LintConfig,
    RuleScope,
    package_relative,
)
from repro.analysis.findings import (
    JSON_SCHEMA_VERSION,
    Finding,
    findings_document,
    sort_findings,
)
from repro.analysis.runner import (
    SYNTAX_ERROR_RULE,
    lint_paths,
    lint_source,
    render_json,
    render_text,
    rule_catalogue,
)
from repro.analysis.suppressions import UNUSED_SUPPRESSION_RULE, SuppressionSheet

__all__ = [
    "CHECKER_REGISTRY",
    "Checker",
    "DEFAULT_CONFIG",
    "FileContext",
    "Finding",
    "JSON_SCHEMA_VERSION",
    "LintConfig",
    "RuleScope",
    "SYNTAX_ERROR_RULE",
    "SuppressionSheet",
    "UNUSED_SUPPRESSION_RULE",
    "findings_document",
    "lint_paths",
    "lint_source",
    "package_relative",
    "register",
    "render_json",
    "render_text",
    "rule_catalogue",
    "sort_findings",
]
