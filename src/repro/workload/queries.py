"""Spatial query types shared by the caches, the client and the server.

Three query types from the paper are supported:

* :class:`RangeQuery` — a window query centred at the client;
* :class:`KNNQuery` — a k-nearest-neighbour query at the client's position;
* :class:`JoinQuery` — a distance self-join restricted to the client's
  neighbourhood window ("pairs of nearby objects within ``threshold`` of each
  other").  The paper describes the join as a distance self-join over the
  dataset issued by a client asking about its proximity area; restricting the
  pairs to a neighbourhood window keeps the result set commensurate with the
  paper's per-query byte counts (see DESIGN.md).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Union

from repro.geometry import Point, Rect
from repro.rtree.sizes import SizeModel


class QueryType(enum.Enum):
    """The query types of the paper's workload."""

    RANGE = "range"
    KNN = "knn"
    JOIN = "join"


@dataclass(frozen=True)
class RangeQuery:
    """A window query: return every object intersecting ``window``."""

    window: Rect

    @property
    def query_type(self) -> QueryType:
        return QueryType.RANGE

    @property
    def anchor(self) -> Point:
        """The point the query is anchored at (the window centre)."""
        return self.window.center()

    def descriptor_bytes(self, size_model: SizeModel) -> int:
        """Uplink bytes of the bare query description."""
        return size_model.query_descriptor_bytes(parameter_count=0)


@dataclass(frozen=True)
class KNNQuery:
    """A k-nearest-neighbour query at ``point``."""

    point: Point
    k: int

    def __post_init__(self) -> None:
        if self.k <= 0:
            raise ValueError("k must be positive")

    @property
    def query_type(self) -> QueryType:
        return QueryType.KNN

    @property
    def anchor(self) -> Point:
        return self.point

    def descriptor_bytes(self, size_model: SizeModel) -> int:
        return size_model.query_header_bytes + size_model.point_bytes() + size_model.coordinate_bytes


@dataclass(frozen=True)
class JoinQuery:
    """A distance self-join within ``window``.

    Returns the distinct objects that participate in at least one pair
    ``(a, b)`` with ``a ≠ b``, both intersecting ``window`` and with MBR
    distance at most ``threshold``.
    """

    window: Rect
    threshold: float

    def __post_init__(self) -> None:
        if self.threshold < 0:
            raise ValueError("threshold must be non-negative")

    @property
    def query_type(self) -> QueryType:
        return QueryType.JOIN

    @property
    def anchor(self) -> Point:
        return self.window.center()

    def descriptor_bytes(self, size_model: SizeModel) -> int:
        return size_model.query_descriptor_bytes(parameter_count=1)


Query = Union[RangeQuery, KNNQuery, JoinQuery]
