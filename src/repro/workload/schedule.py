"""Query-parameter schedules (the k-ramp of the Figure 11 experiment)."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class KnnRampSchedule:
    """The adaptive-caching experiment's k schedule.

    "The average k decreases gradually from 10 to 1 for the first 5,000
    queries, and then increases gradually up to 10 for the second 5,000
    queries."  The schedule is expressed relative to ``total_queries`` so the
    scaled-down runs keep the same shape.
    """

    total_queries: int
    k_high: int = 10
    k_low: int = 1

    def __post_init__(self) -> None:
        if self.total_queries <= 1:
            raise ValueError("total_queries must be at least 2")
        if self.k_low > self.k_high:
            raise ValueError("k_low must not exceed k_high")

    def k_at(self, query_index: int) -> int:
        """The k value for the ``query_index``-th query (0-based)."""
        half = self.total_queries / 2.0
        index = min(max(query_index, 0), self.total_queries - 1)
        if index < half:
            fraction = index / half
            value = self.k_high - fraction * (self.k_high - self.k_low)
        else:
            fraction = (index - half) / half
            value = self.k_low + fraction * (self.k_high - self.k_low)
        return max(self.k_low, min(self.k_high, int(round(value))))
