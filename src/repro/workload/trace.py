"""Recording and replaying query traces.

A trace is the sequence of (position, think-time, query) triples issued by a
simulated client.  Recording a trace once and replaying it against several
caching models guarantees that every model sees exactly the same workload —
which is how the paper's side-by-side comparisons are made fair.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Iterator, List, Optional

from repro.geometry import Point, Rect
from repro.workload.queries import JoinQuery, KNNQuery, Query, RangeQuery


@dataclass(frozen=True)
class TraceRecord:
    """One issued query: where the client was, how long it waited, what it asked.

    ``arrival_time`` is the simulated wall-clock instant the query is issued
    (the running sum of think times); the fleet runner interleaves the traces
    of many clients by it.
    """

    index: int
    position: Point
    think_time: float
    query: Query
    arrival_time: float = 0.0


@dataclass
class QueryTrace:
    """An ordered list of :class:`TraceRecord`, serialisable to JSON."""

    records: List[TraceRecord] = field(default_factory=list)

    def append(self, record: TraceRecord) -> None:
        """Add one record to the trace."""
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def __getitem__(self, index: int) -> TraceRecord:
        return self.records[index]

    # ------------------------------------------------------------------ #
    # serialisation
    # ------------------------------------------------------------------ #
    def to_json(self) -> str:
        """Serialise the trace to a JSON string."""
        payload = []
        for record in self.records:
            entry = {
                "index": record.index,
                "position": [record.position.x, record.position.y],
                "think_time": record.think_time,
                "arrival_time": record.arrival_time,
            }
            query = record.query
            if isinstance(query, RangeQuery):
                entry["query"] = {"type": "range", "window": list(query.window.as_tuple())}
            elif isinstance(query, KNNQuery):
                entry["query"] = {"type": "knn", "point": [query.point.x, query.point.y],
                                  "k": query.k}
            elif isinstance(query, JoinQuery):
                entry["query"] = {"type": "join", "window": list(query.window.as_tuple()),
                                  "threshold": query.threshold}
            else:  # pragma: no cover - defensive
                raise TypeError(f"unsupported query type {type(query)!r}")
            payload.append(entry)
        return json.dumps(payload)

    @staticmethod
    def from_json(text: str) -> "QueryTrace":
        """Deserialise a trace produced by :meth:`to_json`."""
        trace = QueryTrace()
        for entry in json.loads(text):
            query_data = entry["query"]
            query_type = query_data["type"]
            if query_type == "range":
                query: Query = RangeQuery(window=Rect(*query_data["window"]))
            elif query_type == "knn":
                point = Point(*query_data["point"])
                query = KNNQuery(point=point, k=query_data["k"])
            elif query_type == "join":
                query = JoinQuery(window=Rect(*query_data["window"]),
                                  threshold=query_data["threshold"])
            else:
                raise ValueError(f"unknown query type {query_type!r} in trace")
            trace.append(TraceRecord(index=entry["index"],
                                     position=Point(*entry["position"]),
                                     think_time=entry["think_time"],
                                     query=query,
                                     arrival_time=entry.get("arrival_time", 0.0)))
        return trace
