"""Query types and workload generation.

The workload mirrors the paper's simulation: a mobile client issues a random
mix of range, kNN and distance self-join queries anchored at its current
position, with exponentially distributed think time between queries.
"""

from repro.workload.queries import (
    Query,
    QueryType,
    RangeQuery,
    KNNQuery,
    JoinQuery,
)
from repro.workload.generator import QueryGenerator, QueryMix
from repro.workload.schedule import KnnRampSchedule
from repro.workload.trace import QueryTrace, TraceRecord

__all__ = [
    "Query",
    "QueryType",
    "RangeQuery",
    "KNNQuery",
    "JoinQuery",
    "QueryGenerator",
    "QueryMix",
    "KnnRampSchedule",
    "QueryTrace",
    "TraceRecord",
]
