"""Mixed query workload generation anchored at the mobile client's position."""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Optional

from repro.geometry import Point, Rect
from repro.workload.queries import JoinQuery, KNNQuery, Query, QueryType, RangeQuery


@dataclass(frozen=True)
class QueryMix:
    """Relative weights of the three query types in the workload.

    The paper's workload picks the query type uniformly at random; that is
    the default (equal weights).  Setting a weight to zero removes the type,
    e.g. ``QueryMix(knn=1, range_=0, join=0)`` gives the kNN-only workload of
    the Figure 11 experiment.
    """

    range_: float = 1.0
    knn: float = 1.0
    join: float = 1.0

    def __post_init__(self) -> None:
        if min(self.range_, self.knn, self.join) < 0:
            raise ValueError("query mix weights must be non-negative")
        if self.range_ + self.knn + self.join <= 0:
            raise ValueError("at least one query type must have positive weight")


class QueryGenerator:
    """Draws queries of random type and parameters at a given anchor point.

    Parameters mirror Table 6.1:

    * ``window_area`` — average area of a range-query window (``Areawnd``);
    * ``k_max`` — kNN parameter drawn uniformly from ``1..k_max`` (``Kmax``)
      unless a k-schedule overrides it;
    * ``join_distance`` — the distance self-join threshold (``Distjoin``);
    * ``join_window_area`` — neighbourhood restriction of the join (see
      DESIGN.md for the interpretation).
    """

    def __init__(self, window_area: float = 1e-6, k_max: int = 5,
                 join_distance: float = 5e-5, join_window_area: Optional[float] = None,
                 mix: QueryMix = QueryMix(), seed: int = 0) -> None:
        if window_area <= 0:
            raise ValueError("window_area must be positive")
        if k_max <= 0:
            raise ValueError("k_max must be positive")
        self.window_area = window_area
        self.k_max = k_max
        self.join_distance = join_distance
        self.join_window_area = join_window_area if join_window_area is not None else 4 * window_area
        self.mix = mix
        self.rng = random.Random(seed)

    # ------------------------------------------------------------------ #
    # individual query constructors
    # ------------------------------------------------------------------ #
    def range_query(self, anchor: Point) -> RangeQuery:
        """A range query centred at ``anchor`` with ~``window_area`` area."""
        area = self.window_area * self.rng.uniform(0.5, 1.5)
        aspect = self.rng.uniform(0.5, 2.0)
        width = math.sqrt(area * aspect)
        height = area / width
        window = Rect.from_center(anchor, width, height).clamped_unit()
        return RangeQuery(window=window)

    def knn_query(self, anchor: Point, k: Optional[int] = None) -> KNNQuery:
        """A kNN query at ``anchor``; ``k`` defaults to uniform in ``1..k_max``."""
        if k is None:
            k = self.rng.randint(1, self.k_max)
        return KNNQuery(point=anchor, k=max(1, k))

    def join_query(self, anchor: Point) -> JoinQuery:
        """A neighbourhood distance self-join centred at ``anchor``."""
        side = math.sqrt(self.join_window_area)
        window = Rect.from_center(anchor, side, side).clamped_unit()
        return JoinQuery(window=window, threshold=self.join_distance)

    # ------------------------------------------------------------------ #
    # mixed workload
    # ------------------------------------------------------------------ #
    def next_query(self, anchor: Point, k_override: Optional[int] = None) -> Query:
        """Draw the next query of the mixed workload at ``anchor``."""
        weights = [self.mix.range_, self.mix.knn, self.mix.join]
        choice = self.rng.choices([QueryType.RANGE, QueryType.KNN, QueryType.JOIN],
                                  weights=weights, k=1)[0]
        if choice is QueryType.RANGE:
            return self.range_query(anchor)
        if choice is QueryType.KNN:
            return self.knn_query(anchor, k=k_override)
        return self.join_query(anchor)
