"""Profiling hooks: the pluggable :class:`Instrument` protocol and its guard.

The hot paths (session replay, router scatter, WAL commit, wire client) are
instrumented like this::

    from repro.obs import instrument as obs
    ...
    if obs.ENABLED:
        obs.active().event("router.execute", pages=pages)

``ENABLED`` is a module-level flag that is ``False`` by default, so the
per-query cost of the disabled path is a single attribute read and a branch
— bench-verified at <= 2% on the gated fleet scenario (``obs_overhead``).
The active instrument is swapped wholesale via :func:`activate` /
:func:`activated`; the base :class:`Instrument` is a null object whose every
hook is a no-op, so enabled-but-null runs stay cheap too.

:func:`perf_clock` is the tree's **single sanctioned wall-clock read**: rule
``OBS01`` (see :mod:`repro.analysis.checkers.observability`) rejects direct
``time.perf_counter()`` calls in instrumented packages, funnelling every
timing read through this one audited site.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator

__all__ = ["ENABLED", "Instrument", "activate", "activated", "active",
           "deactivate", "perf_clock"]

#: Hot-path guard: call sites touch the active instrument only when True.
ENABLED: bool = False


class Instrument:
    """Null instrument: every hook is a structured no-op.

    Subclasses (:class:`repro.obs.trace.Recorder`) override the hooks to
    record span trees and metrics; the base class exists so the disabled
    and enabled-but-null paths cost nothing beyond the call itself.
    """

    def event(self, name: str, **fields: object) -> None:
        """Record a zero-duration child span under the current span."""

    def annotate(self, **fields: object) -> None:
        """Merge ``fields`` into the innermost open span, if any."""

    def count(self, name: str, amount: float = 1.0,
              **labels: object) -> None:
        """Bump a counter in the instrument's metrics registry."""

    @contextmanager
    def span(self, name: str, **fields: object) -> Iterator[None]:
        """Open a span for the duration of the ``with`` block."""
        yield


_active: Instrument = Instrument()


def active() -> Instrument:
    """The currently installed instrument (null unless :func:`activate`\\ d)."""
    return _active


def activate(instrument: Instrument) -> None:
    """Install ``instrument`` and raise the ``ENABLED`` guard."""
    global ENABLED, _active
    _active = instrument
    ENABLED = True


def deactivate() -> None:
    """Drop back to the null instrument and lower the ``ENABLED`` guard."""
    global ENABLED, _active
    _active = Instrument()
    ENABLED = False


@contextmanager
def activated(instrument: Instrument) -> Iterator[Instrument]:
    """Scope ``instrument`` to a ``with`` block, restoring the prior state."""
    previous = _active if ENABLED else None
    activate(instrument)
    try:
        yield instrument
    finally:
        if previous is None:
            deactivate()
        else:
            activate(previous)


def perf_clock() -> float:
    """Monotonic wall-clock read; the one sanctioned timing source (OBS01)."""
    return time.perf_counter()  # repro: allow[DET02] the obs layer is the single audited clock funnel
