"""The self-contained HTML dashboard page served at ``/`` by the status server.

Pure stdlib-free static HTML + inline JS that polls ``/status`` every two
seconds and renders the headline numbers (queries routed, router-cache hit
rate, eviction churn, admission-queue depth) as tiles plus the raw section
JSON underneath.  No external assets, so it works from a ``curl``-only box
or an air-gapped lab.
"""

from __future__ import annotations

__all__ = ["DASHBOARD_HTML"]

DASHBOARD_HTML = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>repro · live ops</title>
<style>
  body { font-family: ui-monospace, Menlo, Consolas, monospace;
         margin: 2rem; background: #11151a; color: #d6dde4; }
  h1 { font-size: 1.1rem; letter-spacing: .08em; }
  #tiles { display: flex; flex-wrap: wrap; gap: .8rem; margin: 1rem 0; }
  .tile { background: #1b232c; border: 1px solid #2c3946;
          border-radius: 6px; padding: .7rem 1rem; min-width: 11rem; }
  .tile .v { font-size: 1.5rem; color: #7fd0a8; }
  .tile .k { font-size: .7rem; color: #8b9aa8; text-transform: uppercase; }
  pre { background: #1b232c; border: 1px solid #2c3946; border-radius: 6px;
        padding: 1rem; overflow-x: auto; font-size: .78rem; }
  #err { color: #e08a8a; }
  a { color: #86b3e0; }
</style>
</head>
<body>
<h1>repro fleet &mdash; live ops</h1>
<p><a href="/status">/status</a> &middot; <a href="/metrics">/metrics</a>
   <span id="err"></span></p>
<div id="tiles"></div>
<pre id="raw">loading&hellip;</pre>
<script>
function dig(obj, path) {
  let cur = obj;
  for (const key of path) {
    if (cur == null || typeof cur !== "object") return null;
    cur = cur[key];
  }
  return (typeof cur === "number") ? cur : null;
}
function tile(label, value) {
  if (value === null) return "";
  const shown = Number.isInteger(value) ? value : value.toFixed(3);
  return `<div class="tile"><div class="v">${shown}</div>` +
         `<div class="k">${label}</div></div>`;
}
async function refresh() {
  try {
    const reply = await fetch("/status");
    const doc = await reply.json();
    const s = doc.sections || {};
    const hits = dig(s, ["shards", "cache_hits"]);
    const probes = dig(s, ["shards", "cache_probes"]);
    const tiles = [
      tile("queries routed", dig(s, ["shards", "total_routed"])),
      tile("shards skipped", dig(s, ["shards", "total_skipped"])),
      tile("cache hit rate", (hits !== null && probes)
           ? hits / probes : null),
      tile("evictions", dig(s, ["cache", "evictions"])),
      tile("refreshes", dig(s, ["cache", "refreshes"])),
      tile("wal commits", dig(s, ["updates", "wal_commits"])),
      tile("dataset version", dig(s, ["updates", "dataset_version"])),
      tile("queue depth", dig(s, ["net", "queue_depth"])),
      tile("net p99 ms", dig(s, ["net", "latency", "p99_ms"])),
    ].join("");
    document.getElementById("tiles").innerHTML = tiles;
    document.getElementById("raw").textContent =
        JSON.stringify(doc, null, 2);
    document.getElementById("err").textContent = "";
  } catch (exc) {
    document.getElementById("err").textContent = " (poll failed: " + exc + ")";
  }
}
refresh();
setInterval(refresh, 2000);
</script>
</body>
</html>
"""
