"""Observability layer: metrics registry, per-query tracing, status server.

The package is deliberately passive — nothing in the hot path imports more
than :mod:`repro.obs.instrument`, whose module-level ``ENABLED`` flag guards
every call site, so a fleet run with instrumentation off executes the exact
same byte-for-byte cost accounting it did before this package existed.

* :mod:`repro.obs.registry` — named counters / gauges / histograms with
  label sets, a deterministic ``snapshot()`` and Prometheus-style text
  exposition.
* :mod:`repro.obs.instrument` — the pluggable :class:`Instrument` protocol
  (null by default), the ``ENABLED`` guard, and :func:`perf_clock`, the
  tree's one sanctioned wall-clock read (rule ``OBS01``).
* :mod:`repro.obs.trace` — the recording instrument: a :class:`Span` tree
  per query, JSONL export and a text flame view (``repro trace``).
* :mod:`repro.obs.status` — the live ops HTTP endpoint (``/status``,
  ``/metrics`` and a self-contained dashboard page) served next to a
  running fleet or :class:`~repro.net.server.ReproServer`.
"""

from repro.obs.instrument import Instrument, activate, activated, active, deactivate, perf_clock
from repro.obs.registry import MetricsRegistry
from repro.obs.status import StatusBoard, StatusServer, StatusServerThread
from repro.obs.trace import MetricsRecorder, Recorder, Span

__all__ = [
    "Instrument",
    "MetricsRecorder",
    "MetricsRegistry",
    "Recorder",
    "Span",
    "StatusBoard",
    "StatusServer",
    "StatusServerThread",
    "activate",
    "activated",
    "active",
    "deactivate",
    "perf_clock",
]
