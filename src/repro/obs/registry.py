"""Metrics registry: named counters, gauges and histograms with label sets.

Two contracts matter here:

* **Determinism.**  Every metric declares whether it is a pure function of
  the run's seeds (``deterministic=True``, the default) or carries
  wall-clock readings (``deterministic=False``).  :meth:`MetricsRegistry.snapshot`
  splits the two into separate sections and
  :meth:`MetricsRegistry.deterministic_blob` canonicalises only the seeded
  section, so two identical seeded runs produce byte-identical blobs no
  matter how the wall clock behaved.
* **Exposition.**  :meth:`MetricsRegistry.render_prometheus` emits the
  Prometheus text format (``# HELP`` / ``# TYPE`` headers, cumulative
  ``_bucket`` series for histograms) for the status server's ``/metrics``
  endpoint.
"""

from __future__ import annotations

import json
import math
import re
from typing import Dict, List, Mapping, Optional, Tuple

__all__ = ["Counter", "Gauge", "Histogram", "Metric", "MetricsRegistry"]

#: Canonical, sorted ``(label, value)`` series key.
LabelKey = Tuple[Tuple[str, str], ...]

_NAME = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*\Z")
_LABEL = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*\Z")

#: Default histogram buckets — tuned for "pages per query" style counts.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 1000.0, math.inf)


def _label_key(labels: Mapping[str, object]) -> LabelKey:
    for name in labels:
        if _LABEL.match(name) is None:
            raise ValueError(f"invalid label name {name!r}")
    return tuple(sorted((name, str(value)) for name, value in labels.items()))


def _render_labels(key: LabelKey) -> str:
    if not key:
        return ""
    inner = ",".join(f'{name}="{value}"' for name, value in key)
    return "{" + inner + "}"


class Metric:
    """Base class: a named family of series keyed by their label sets."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str = "",
                 deterministic: bool = True) -> None:
        if _NAME.match(name) is None:
            raise ValueError(f"invalid metric name {name!r}")
        self.name = name
        self.help_text = help_text
        self.deterministic = deterministic
        self._series: Dict[LabelKey, float] = {}

    def value(self, **labels: object) -> float:
        """Current value of the series addressed by ``labels`` (0 if unset)."""
        return self._series.get(_label_key(labels), 0.0)

    def series_items(self) -> List[Tuple[LabelKey, float]]:
        """All series, sorted by label key for stable iteration."""
        return sorted(self._series.items())

    def snapshot_series(self) -> Dict[str, object]:
        """JSON-friendly ``{rendered labels: value}`` map, sorted."""
        return {_render_labels(key): value for key, value in self.series_items()}

    def expose(self) -> List[str]:
        """Prometheus text-format lines for this family."""
        lines = []
        if self.help_text:
            lines.append(f"# HELP {self.name} {self.help_text}")
        lines.append(f"# TYPE {self.name} {self.kind}")
        for key, value in self.series_items():
            lines.append(f"{self.name}{_render_labels(key)} {_format(value)}")
        return lines


def _format(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


class Counter(Metric):
    """Monotonically increasing count."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        """Add ``amount`` (>= 0) to the series addressed by ``labels``."""
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease "
                             f"(inc({amount}))")
        key = _label_key(labels)
        self._series[key] = self._series.get(key, 0.0) + amount


class Gauge(Metric):
    """Point-in-time value that may go up or down."""

    kind = "gauge"

    def set(self, value: float, **labels: object) -> None:
        """Overwrite the series addressed by ``labels``."""
        self._series[_label_key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        """Shift the series addressed by ``labels`` by ``amount``."""
        key = _label_key(labels)
        self._series[key] = self._series.get(key, 0.0) + amount


class Histogram(Metric):
    """Bucketed distribution with per-series count and sum."""

    kind = "histogram"

    def __init__(self, name: str, help_text: str = "",
                 deterministic: bool = True,
                 buckets: Optional[Tuple[float, ...]] = None) -> None:
        super().__init__(name, help_text, deterministic)
        bounds = tuple(buckets) if buckets is not None else DEFAULT_BUCKETS
        if not bounds or sorted(bounds) != list(bounds):
            raise ValueError(f"histogram {name}: buckets must be sorted")
        if not math.isinf(bounds[-1]):
            bounds = bounds + (math.inf,)
        self.buckets = bounds
        self._counts: Dict[LabelKey, List[int]] = {}
        self._sums: Dict[LabelKey, float] = {}
        self._totals: Dict[LabelKey, int] = {}

    def observe(self, value: float, **labels: object) -> None:
        """Record one sample in the series addressed by ``labels``."""
        key = _label_key(labels)
        counts = self._counts.setdefault(key, [0] * len(self.buckets))
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                counts[index] += 1
                break
        self._sums[key] = self._sums.get(key, 0.0) + float(value)
        self._totals[key] = self._totals.get(key, 0) + 1

    def value(self, **labels: object) -> float:
        """Sample count of the series addressed by ``labels``."""
        return float(self._totals.get(_label_key(labels), 0))

    def snapshot_series(self) -> Dict[str, object]:
        out: Dict[str, object] = {}
        for key in sorted(self._totals):
            buckets = {_format(bound): count for bound, count
                       in zip(self.buckets, self._counts[key])}
            out[_render_labels(key)] = {
                "count": self._totals[key],
                "sum": self._sums[key],
                "buckets": buckets,
            }
        return out

    def expose(self) -> List[str]:
        lines = []
        if self.help_text:
            lines.append(f"# HELP {self.name} {self.help_text}")
        lines.append(f"# TYPE {self.name} histogram")
        for key in sorted(self._totals):
            cumulative = 0
            for bound, count in zip(self.buckets, self._counts[key]):
                cumulative += count
                bucket_key = key + (("le", _format(bound)),)
                lines.append(f"{self.name}_bucket{_render_labels(bucket_key)} "
                             f"{cumulative}")
            lines.append(f"{self.name}_sum{_render_labels(key)} "
                         f"{_format(self._sums[key])}")
            lines.append(f"{self.name}_count{_render_labels(key)} "
                         f"{self._totals[key]}")
        return lines


class MetricsRegistry:
    """Get-or-create home for every metric family of one run."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    def _existing(self, name: str, kind: str,
                  deterministic: bool) -> Optional[Metric]:
        existing = self._metrics.get(name)
        if existing is None:
            return None
        if existing.kind != kind:
            raise ValueError(f"metric {name!r} already registered as "
                             f"{existing.kind}, not {kind}")
        if existing.deterministic != deterministic:
            raise ValueError(f"metric {name!r} already registered with "
                             f"deterministic={existing.deterministic}")
        return existing

    def counter(self, name: str, help_text: str = "",
                deterministic: bool = True) -> Counter:
        """Get or create the counter family ``name``."""
        existing = self._existing(name, "counter", deterministic)
        if existing is not None:
            assert isinstance(existing, Counter)
            return existing
        metric = Counter(name, help_text, deterministic)
        self._metrics[name] = metric
        return metric

    def gauge(self, name: str, help_text: str = "",
              deterministic: bool = True) -> Gauge:
        """Get or create the gauge family ``name``."""
        existing = self._existing(name, "gauge", deterministic)
        if existing is not None:
            assert isinstance(existing, Gauge)
            return existing
        metric = Gauge(name, help_text, deterministic)
        self._metrics[name] = metric
        return metric

    def histogram(self, name: str, help_text: str = "",
                  deterministic: bool = True,
                  buckets: Optional[Tuple[float, ...]] = None) -> Histogram:
        """Get or create the histogram family ``name``."""
        existing = self._existing(name, "histogram", deterministic)
        if existing is not None:
            assert isinstance(existing, Histogram)
            return existing
        metric = Histogram(name, help_text, deterministic, buckets=buckets)
        self._metrics[name] = metric
        return metric

    def families(self) -> List[Metric]:
        """Every registered family, sorted by name."""
        return [self._metrics[name] for name in sorted(self._metrics)]

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Sorted, JSON-friendly state split by determinism class.

        The ``"deterministic"`` section is a pure function of the run's
        seeds; the ``"wall_clock"`` section holds everything timing-tainted
        and must never feed a fingerprint.
        """
        sections: Dict[str, Dict[str, object]] = {
            "deterministic": {}, "wall_clock": {}}
        for metric in self.families():
            section = ("deterministic" if metric.deterministic
                       else "wall_clock")
            sections[section][metric.name] = {
                "kind": metric.kind,
                "series": metric.snapshot_series(),
            }
        return sections

    def deterministic_blob(self) -> bytes:
        """Canonical JSON bytes of the deterministic snapshot section."""
        return json.dumps(self.snapshot()["deterministic"], sort_keys=True,
                          separators=(",", ":")).encode("utf-8")

    def render_prometheus(self) -> str:
        """The whole registry in the Prometheus text exposition format."""
        lines: List[str] = []
        for metric in self.families():
            lines.extend(metric.expose())
        return "\n".join(lines) + ("\n" if lines else "")
