"""Live ops HTTP endpoint: ``/status`` JSON, ``/metrics`` exposition, dashboard.

A :class:`StatusBoard` is a bag of named *provider* callables — each run
registers closures over its live objects (shard router stats, router-cache
counters, proactive-cache churn, WAL facts, net ledgers) and the board
assembles them into one JSON document on every scrape.  Providers that
raise are reported as an ``error`` section instead of taking the endpoint
down, because a scrape racing the end of a run is normal.

:class:`StatusServer` is a deliberately tiny GET-only asyncio HTTP server
(no routes beyond ``/``, ``/status``, ``/healthz`` and ``/metrics``, no
keep-alive) so it can ride inside :class:`repro.net.server.ReproServer`'s
loop or on its own :class:`StatusServerThread` next to an in-process fleet
run — stdlib only, mirroring the wire server's thread harness.
"""

from __future__ import annotations

import asyncio
import json
import threading
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, Optional, Tuple

from repro.obs.dashboard import DASHBOARD_HTML
from repro.obs.registry import MetricsRegistry

__all__ = ["StatusBoard", "StatusServer", "StatusServerThread",
           "active_board", "board_active", "publish"]

#: One status section: a zero-argument callable returning JSON-able data.
Provider = Callable[[], object]


class StatusBoard:
    """Named status sections assembled into one ``/status`` document."""

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry
        self._providers: Dict[str, Provider] = {}

    def register(self, section: str, provider: Provider) -> None:
        """Install (or replace) the provider behind ``section``."""
        self._providers[section] = provider

    def unregister(self, section: str) -> None:
        """Drop ``section``; unknown names are a no-op."""
        self._providers.pop(section, None)

    def status(self) -> Dict[str, object]:
        """Evaluate every provider; failures become ``error`` sub-objects."""
        sections: Dict[str, object] = {}
        for name in sorted(self._providers):
            try:
                sections[name] = self._providers[name]()
            except Exception as exc:
                sections[name] = {
                    "error": f"{type(exc).__name__}: {exc}"}
        return {"sections": sections}

    def status_json(self) -> str:
        """The ``/status`` payload, sorted for stable diffs."""
        return json.dumps(self.status(), sort_keys=True, default=str)

    def metrics_text(self) -> str:
        """The ``/metrics`` payload (empty without a registry)."""
        if self.registry is None:
            return ""
        return self.registry.render_prometheus()


_board: Optional[StatusBoard] = None


def active_board() -> Optional[StatusBoard]:
    """The board runs publish into, or None outside ``board_active``."""
    return _board


def publish(section: str, provider: Provider) -> None:
    """Register ``provider`` on the active board; no-op when none is live."""
    board = active_board()
    if board is not None:
        board.register(section, provider)


@contextmanager
def board_active(board: StatusBoard) -> Iterator[StatusBoard]:
    """Scope ``board`` as the publish target for a ``with`` block."""
    global _board
    previous = _board
    _board = board
    try:
        yield board
    finally:
        _board = previous


_RESPONSES = {
    200: "OK",
    404: "Not Found",
    405: "Method Not Allowed",
}


class StatusServer:
    """GET-only asyncio HTTP server over a :class:`StatusBoard`."""

    def __init__(self, board: StatusBoard, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.board = board
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> Tuple[str, int]:
        """Bind and start serving; returns the resolved ``(host, port)``."""
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port)
        sockets = self._server.sockets
        assert sockets
        self.host, self.port = sockets[0].getsockname()[:2]
        return (self.host, self.port)

    async def close(self) -> None:
        """Stop accepting and close the listener."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    def _route(self, path: str) -> Tuple[int, str, str]:
        if path in ("/", "/index.html"):
            return (200, "text/html; charset=utf-8", DASHBOARD_HTML)
        if path == "/status":
            return (200, "application/json; charset=utf-8",
                    self.board.status_json())
        if path == "/metrics":
            return (200, "text/plain; version=0.0.4; charset=utf-8",
                    self.board.metrics_text())
        if path == "/healthz":
            return (200, "text/plain; charset=utf-8", "ok\n")
        return (404, "text/plain; charset=utf-8",
                f"no route for {path}\n")

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            request_line = await asyncio.wait_for(reader.readline(),
                                                  timeout=5.0)
            parts = request_line.decode("latin-1").split()
            if len(parts) < 2:
                return
            method, target = parts[0], parts[1]
            while True:  # drain headers; no bodies on GET
                header = await asyncio.wait_for(reader.readline(),
                                                timeout=5.0)
                if header in (b"\r\n", b"\n", b""):
                    break
            if method != "GET":
                status, content_type, body = (
                    405, "text/plain; charset=utf-8",
                    "status server is GET-only\n")
            else:
                status, content_type, body = self._route(
                    target.split("?", 1)[0])
            payload = body.encode("utf-8")
            head = (f"HTTP/1.1 {status} {_RESPONSES[status]}\r\n"
                    f"Content-Type: {content_type}\r\n"
                    f"Content-Length: {len(payload)}\r\n"
                    f"Connection: close\r\n\r\n")
            writer.write(head.encode("latin-1") + payload)
            await writer.drain()
        except (asyncio.TimeoutError, ConnectionError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass


class StatusServerThread:
    """Run a :class:`StatusServer` on its own event-loop thread.

    Mirrors :class:`repro.net.server.ServerThread`: ``start()`` blocks
    until the port is bound (so callers can print the address before the
    run begins), ``stop()`` tears the loop down and joins.
    """

    def __init__(self, board: StatusBoard, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.server = StatusServer(board, host=host, port=port)
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None

    @property
    def host(self) -> str:
        """Bound interface (resolved after ``start()``)."""
        return self.server.host

    @property
    def port(self) -> int:
        """Bound port (resolved after ``start()``)."""
        return self.server.port

    def start(self) -> None:
        """Spawn the loop thread; blocks until the listener is bound."""
        if self._thread is not None:
            raise RuntimeError("status server thread already started")
        self._thread = threading.Thread(target=self._run,
                                        name="repro-status-server",
                                        daemon=True)
        self._thread.start()
        self._ready.wait()
        if self._startup_error is not None:
            error = self._startup_error
            self._thread.join()
            self._thread = None
            raise RuntimeError(f"status server failed to start: {error}")

    def stop(self) -> None:
        """Shut the loop down and join the thread."""
        if self._thread is None:
            return
        if self._loop is not None and self._stop_event is not None:
            loop, event = self._loop, self._stop_event
            loop.call_soon_threadsafe(event.set)
        self._thread.join()
        self._thread = None
        self._loop = None
        self._stop_event = None

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as error:  # startup failures surface in start()
            if not self._ready.is_set():
                self._startup_error = error
                self._ready.set()
            else:  # pragma: no cover - post-startup loop crash
                raise

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        # _ready is set only after a successful bind; a failing start()
        # propagates to _run, which records it before releasing start().
        await self.server.start()
        self._ready.set()
        try:
            await self._stop_event.wait()
        finally:
            await self.server.close()
