"""Per-query tracing: the recording instrument, JSONL export, flame view.

A :class:`Recorder` installed via :func:`repro.obs.instrument.activated`
collects one :class:`Span` tree per query — the replay loop opens the root
``query`` span, and the layers underneath (consistency protocol, proactive
cache, shard router, per-shard R-tree traversal, WAL, wire client) attach
events carrying the deterministic cost fields they already compute (pages
read, bytes, shards skipped, sync verdicts).  With ``timing=False`` (the
default) the trace is a pure function of the run's seeds and the JSONL
export is byte-stable; ``timing=True`` adds clearly marked
``wall_elapsed_ms`` fields that must never feed a fingerprint.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, TextIO, Tuple

from repro.obs.instrument import Instrument, perf_clock
from repro.obs.registry import MetricsRegistry

__all__ = ["MetricsRecorder", "Recorder", "Span", "render_flame",
           "spans_to_jsonl"]


@dataclass
class Span:
    """One node of a query's trace tree."""

    name: str
    fields: Dict[str, object] = field(default_factory=dict)
    children: List["Span"] = field(default_factory=list)
    kind: str = "span"
    #: Wall-clock duration in ms; only set when the recorder times spans,
    #: and always excluded from deterministic comparisons.
    wall_elapsed_ms: Optional[float] = None

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly recursive form (sorted keys happen at dump time)."""
        out: Dict[str, object] = {"name": self.name, "kind": self.kind}
        if self.fields:
            out["fields"] = dict(self.fields)
        if self.children:
            out["children"] = [child.to_dict() for child in self.children]
        if self.wall_elapsed_ms is not None:
            out["wall_elapsed_ms"] = self.wall_elapsed_ms
        return out


class Recorder(Instrument):
    """Recording instrument: span trees plus a metrics registry.

    Not thread-safe by design — the replay loops are single-threaded and
    the status server only *reads* the registry (atomic enough under the
    GIL for monitoring purposes).
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None,
                 timing: bool = False) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.timing = timing
        self.roots: List[Span] = []
        self._stack: List[Span] = []
        self._events = self.registry.counter(
            "repro_trace_events_total",
            "Trace events recorded, labelled by event name.")

    def _attach(self, span: Span) -> None:
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)

    @contextmanager
    def span(self, name: str, **fields: object) -> Iterator[None]:
        span = Span(name=name, fields=dict(fields))
        self._attach(span)
        self._stack.append(span)
        start = perf_clock() if self.timing else 0.0
        try:
            yield
        finally:
            if self.timing:
                span.wall_elapsed_ms = (perf_clock() - start) * 1000.0
            self._stack.pop()

    def event(self, name: str, **fields: object) -> None:
        self._attach(Span(name=name, fields=dict(fields), kind="event"))
        self._events.inc(1.0, event=name)

    def annotate(self, **fields: object) -> None:
        if self._stack:
            self._stack[-1].fields.update(fields)

    def count(self, name: str, amount: float = 1.0,
              **labels: object) -> None:
        self.registry.counter(name).inc(amount, **labels)


class MetricsRecorder(Instrument):
    """Registry-only instrument: counters and event tallies, no span trees.

    For long-lived processes (``repro serve --status-port``) where a
    :class:`Recorder` would retain every span for the life of the server.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self._events = self.registry.counter(
            "repro_trace_events_total",
            "Trace events recorded, labelled by event name.")

    def event(self, name: str, **fields: object) -> None:
        self._events.inc(1.0, event=name)

    def count(self, name: str, amount: float = 1.0,
              **labels: object) -> None:
        self.registry.counter(name).inc(amount, **labels)


def spans_to_jsonl(roots: Sequence[Span], stream: Optional[TextIO] = None
                   ) -> str:
    """One JSON line per root span (i.e. one line per traced query).

    Keys are sorted, so with timing disabled two identical seeded runs
    export byte-identical documents.
    """
    lines = [json.dumps(root.to_dict(), sort_keys=True,
                        separators=(",", ":"))
             for root in roots]
    text = "\n".join(lines) + ("\n" if lines else "")
    if stream is not None:
        stream.write(text)
    return text


_NUMERIC = (int, float)

#: Identity-like fields whose numeric values are labels, not quantities —
#: summing them across spans would be meaningless in the flame view.
_IDENTITY_FIELDS = frozenset({"client", "seq", "shard", "worker", "version"})


def _aggregate(roots: Sequence[Span]) -> "List[Tuple[Tuple[str, ...], _Agg]]":
    rows: Dict[Tuple[str, ...], _Agg] = {}

    def visit(span: Span, path: Tuple[str, ...]) -> None:
        here = path + (span.name,)
        row = rows.get(here)
        if row is None:
            row = rows[here] = _Agg()
        row.count += 1
        for key, value in span.fields.items():
            if (key in _IDENTITY_FIELDS or isinstance(value, bool)
                    or not isinstance(value, _NUMERIC)):
                continue
            row.sums[key] = row.sums.get(key, 0.0) + float(value)
        if span.wall_elapsed_ms is not None:
            row.wall_ms += span.wall_elapsed_ms
        for child in span.children:
            visit(child, here)

    for root in roots:
        visit(root, ())
    return list(rows.items())


@dataclass
class _Agg:
    count: int = 0
    wall_ms: float = 0.0
    sums: Dict[str, float] = field(default_factory=dict)


def render_flame(roots: Sequence[Span], limit: int = 48,
                 width: int = 24) -> str:
    """Text flame view: one line per distinct span path, DFS order.

    Bars are proportional to call counts relative to the busiest top-level
    span; numeric fields are summed per path and printed (up to four,
    alphabetically) after the bar.
    """
    rows = _aggregate(roots)
    if not rows:
        return "(no spans recorded)"
    top = max(row.count for path, row in rows if len(path) == 1)
    lines = [f"{'span':<40} {'count':>7}  profile"]
    for path, row in rows[:limit]:
        label = "  " * (len(path) - 1) + path[-1]
        bar = "#" * max(1, round(width * row.count / top))
        extras = " ".join(f"{key}={row.sums[key]:g}"
                          for key in sorted(row.sums)[:4])
        if row.wall_ms:
            extras = (extras + " " if extras else "") + \
                f"wall_ms={row.wall_ms:.1f}"
        lines.append(f"{label:<40} {row.count:>7}  {bar} {extras}".rstrip())
    if len(rows) > limit:
        lines.append(f"... {len(rows) - limit} more span paths "
                     f"(raise --limit)")
    return "\n".join(lines)
