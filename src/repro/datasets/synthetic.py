"""Synthetic stand-ins for the NE (postal zones) and RD (roads) datasets."""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Optional

from repro.datasets.zipf import ZipfSizeGenerator
from repro.geometry import Point, Rect
from repro.rtree.entry import ObjectRecord


@dataclass(frozen=True)
class DatasetSpec:
    """Parameters of a synthetic dataset build."""

    name: str
    object_count: int
    seed: int = 7
    mean_object_bytes: int = 10_240
    zipf_theta: float = 0.8


def _sizes(spec: DatasetSpec, rng: random.Random) -> ZipfSizeGenerator:
    return ZipfSizeGenerator(mean_bytes=spec.mean_object_bytes, theta=spec.zipf_theta, rng=rng)


def generate_ne_like(object_count: int, seed: int = 7, cluster_count: int = 40,
                     mean_object_bytes: int = 10_240, zipf_theta: float = 0.8) -> List[ObjectRecord]:
    """Generate an NE-like dataset: small rectangles in Gaussian urban clusters.

    Postal zones concentrate around metropolitan areas; we emulate that with a
    mixture of Gaussian clusters of varying spread plus a thin uniform
    background, all clipped to the unit square.
    """
    rng = random.Random(seed)
    sizes = ZipfSizeGenerator(mean_bytes=mean_object_bytes, theta=zipf_theta, rng=rng)
    centers = [(rng.random(), rng.random(), rng.uniform(0.01, 0.06))
               for _ in range(cluster_count)]
    weights = [rng.uniform(0.5, 2.0) for _ in range(cluster_count)]
    total_weight = sum(weights)
    records: List[ObjectRecord] = []
    for object_id in range(object_count):
        if rng.random() < 0.05:
            cx, cy = rng.random(), rng.random()
        else:
            pick = rng.uniform(0, total_weight)
            acc = 0.0
            cx = cy = 0.5
            for (mx, my, spread), weight in zip(centers, weights):
                acc += weight
                if pick <= acc:
                    cx = rng.gauss(mx, spread)
                    cy = rng.gauss(my, spread)
                    break
        center = Point(cx, cy).clamped(0.001, 0.999)
        half_w = rng.uniform(0.00005, 0.0015)
        half_h = rng.uniform(0.00005, 0.0015)
        mbr = Rect.from_center(center, 2 * half_w, 2 * half_h).clamped_unit()
        records.append(ObjectRecord(object_id=object_id, mbr=mbr, size_bytes=sizes.sample()))
    return records


def generate_rd_like(object_count: int, seed: int = 11, road_count: int = 60,
                     mean_object_bytes: int = 10_240, zipf_theta: float = 0.8) -> List[ObjectRecord]:
    """Generate an RD-like dataset: short segments chained along polylines.

    Road segments are elongated and highly correlated along their parent
    polyline; we emulate that by random-walking ``road_count`` polylines
    across the unit square and emitting one object per step.
    """
    rng = random.Random(seed)
    sizes = ZipfSizeGenerator(mean_bytes=mean_object_bytes, theta=zipf_theta, rng=rng)
    records: List[ObjectRecord] = []
    object_id = 0
    per_road = max(1, object_count // road_count)
    while object_id < object_count:
        x, y = rng.random(), rng.random()
        heading = rng.uniform(0, 2 * math.pi)
        for _ in range(per_road):
            if object_id >= object_count:
                break
            heading += rng.gauss(0.0, 0.35)
            step = rng.uniform(0.001, 0.004)
            nx = min(max(x + step * math.cos(heading), 0.0), 1.0)
            ny = min(max(y + step * math.sin(heading), 0.0), 1.0)
            mbr = Rect(min(x, nx), min(y, ny), max(x, nx), max(y, ny))
            if mbr.area() <= 0.0:
                mbr = mbr.buffered(1e-5).clamped_unit()
            records.append(ObjectRecord(object_id=object_id, mbr=mbr,
                                        size_bytes=sizes.sample()))
            object_id += 1
            x, y = nx, ny
    return records


def generate_uniform(object_count: int, seed: int = 3,
                     mean_object_bytes: int = 10_240, zipf_theta: float = 0.8) -> List[ObjectRecord]:
    """A uniform point-like dataset (used by tests and ablations)."""
    rng = random.Random(seed)
    sizes = ZipfSizeGenerator(mean_bytes=mean_object_bytes, theta=zipf_theta, rng=rng)
    records: List[ObjectRecord] = []
    for object_id in range(object_count):
        center = Point(rng.random(), rng.random())
        mbr = Rect.from_center(center, 0.0005, 0.0005).clamped_unit()
        records.append(ObjectRecord(object_id=object_id, mbr=mbr, size_bytes=sizes.sample()))
    return records


def make_dataset(name: str, object_count: int, seed: Optional[int] = None,
                 mean_object_bytes: int = 10_240, zipf_theta: float = 0.8) -> List[ObjectRecord]:
    """Dataset factory keyed by the paper's dataset names.

    ``name`` is one of ``"NE"``, ``"RD"`` or ``"UNIFORM"`` (case-insensitive).
    """
    key = name.upper()
    if key == "NE":
        return generate_ne_like(object_count, seed=seed if seed is not None else 7,
                                mean_object_bytes=mean_object_bytes, zipf_theta=zipf_theta)
    if key == "RD":
        return generate_rd_like(object_count, seed=seed if seed is not None else 11,
                                mean_object_bytes=mean_object_bytes, zipf_theta=zipf_theta)
    if key == "UNIFORM":
        return generate_uniform(object_count, seed=seed if seed is not None else 3,
                                mean_object_bytes=mean_object_bytes, zipf_theta=zipf_theta)
    raise ValueError(f"unknown dataset {name!r}; expected 'NE', 'RD' or 'UNIFORM'")
