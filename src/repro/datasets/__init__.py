"""Synthetic spatial datasets standing in for the paper's NE and RD datasets.

The original experiments use two real datasets from the R-tree portal: NE
(123,593 postal zones of New York / Philadelphia / Boston) and RD (594,103
railroad and road segments of North America), both normalized to the unit
square, with object payload sizes following a Zipf distribution averaging
10 KB.  Those files are not redistributable here, so this package generates
synthetic datasets with the same characteristics that matter to caching:
strong spatial clustering (NE-like) or elongated, connected road-like
geometry (RD-like), unit-square normalization and Zipf-skewed object sizes.
"""

from repro.datasets.zipf import ZipfSizeGenerator
from repro.datasets.synthetic import (
    DatasetSpec,
    generate_ne_like,
    generate_rd_like,
    generate_uniform,
    make_dataset,
)

__all__ = [
    "ZipfSizeGenerator",
    "DatasetSpec",
    "generate_ne_like",
    "generate_rd_like",
    "generate_uniform",
    "make_dataset",
]
