"""Zipf-distributed object sizes (paper: mean 10 KB, skew theta = 0.8)."""

from __future__ import annotations

import random
from typing import List, Optional


class ZipfSizeGenerator:
    """Draws object payload sizes from a (bounded) Zipf distribution.

    The paper states that "the sizes of individual objects follow a Zipf
    distribution with the skewness parameter theta being 0.8" around an
    average size of 10 KB.  We realise this by drawing a rank ``r`` from a
    Zipf law over ``rank_count`` ranks and mapping ranks to sizes on a
    geometric scale, then rescaling so the empirical mean matches
    ``mean_bytes``.
    """

    def __init__(self, mean_bytes: int = 10_240, theta: float = 0.8,
                 rank_count: int = 100, min_bytes: int = 512,
                 rng: Optional[random.Random] = None) -> None:
        if mean_bytes <= 0:
            raise ValueError("mean_bytes must be positive")
        if not 0.0 <= theta < 2.0:
            raise ValueError("theta must be in [0, 2)")
        self.mean_bytes = mean_bytes
        self.theta = theta
        self.rank_count = rank_count
        self.min_bytes = min_bytes
        self.rng = rng or random.Random(0)
        weights = [1.0 / (rank ** theta) for rank in range(1, rank_count + 1)]
        total = sum(weights)
        self._probabilities = [w / total for w in weights]
        # Raw size ladder: rank 1 is the largest object, rank_count the smallest.
        self._raw_sizes = [mean_bytes * (rank_count / rank) ** 0.5
                           for rank in range(1, rank_count + 1)]
        expected_raw = sum(p * s for p, s in zip(self._probabilities, self._raw_sizes))
        self._scale = mean_bytes / expected_raw

    def sample(self) -> int:
        """Draw one object size in bytes."""
        rank = self.rng.choices(range(self.rank_count), weights=self._probabilities, k=1)[0]
        size = int(round(self._raw_sizes[rank] * self._scale))
        return max(self.min_bytes, size)

    def sample_many(self, count: int) -> List[int]:
        """Draw ``count`` object sizes."""
        return [self.sample() for _ in range(count)]
