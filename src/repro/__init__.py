"""repro — Proactive Caching for Spatial Queries in Mobile Environments.

A from-scratch Python reproduction of Hu et al., ICDE 2005.  The package
contains every substrate the paper's evaluation relies on:

* :mod:`repro.geometry` / :mod:`repro.rtree` — geometry primitives and a
  paged R*-tree with range, best-first kNN and R-tree join algorithms, plus
  the binary partition trees that power compact-form index caching;
* :mod:`repro.datasets`, :mod:`repro.mobility`, :mod:`repro.workload`,
  :mod:`repro.network` — synthetic NE/RD-like datasets, the RAN/DIR mobility
  models, the mixed query workload and the wireless channel model;
* :mod:`repro.core` — the proactive caching model itself (client-side query
  processing, remainder queries, supporting-index forms, adaptive depth
  control and the GRD replacement family);
* :mod:`repro.baselines` — page caching and semantic caching;
* :mod:`repro.sim` and :mod:`repro.experiments` — the end-to-end simulator
  and the scripts that regenerate every figure of the paper.

Quickstart::

    from repro.sim import SimulationConfig
    from repro.sim.runner import run_comparison

    results = run_comparison(SimulationConfig.tiny(), models=("PAG", "SEM", "APRO"))
    for name, result in results.items():
        print(name, result.summary())
"""

from repro.geometry import Point, Rect
from repro.rtree import RTree, bulk_load_str
from repro.sim.config import SimulationConfig

__version__ = "1.0.0"

__all__ = [
    "Point",
    "Rect",
    "RTree",
    "bulk_load_str",
    "SimulationConfig",
    "__version__",
]
