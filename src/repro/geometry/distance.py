"""Distance helpers shared by the kNN search, joins and semantic caching."""

from __future__ import annotations

import math

from repro.geometry.point import Point
from repro.geometry.rect import Rect


def euclidean(a: Point, b: Point) -> float:
    """Euclidean distance between two points."""
    return a.distance_to(b)


def min_dist_point_rect(point: Point, rect: Rect) -> float:
    """MINDIST between a point and a rectangle (Roussopoulos et al.)."""
    return rect.min_dist_to_point(point)


def min_dist_sq_point_rect(point: Point, rect: Rect) -> float:
    """Squared MINDIST between a point and a rectangle (no square root).

    Reference form of the squared kernels the hot loops inline; see
    :meth:`Rect.min_dist_sq_to_point`.
    """
    return rect.min_dist_sq_to_point(point)


def min_dist_sq_rect_rect(a: Rect, b: Rect) -> float:
    """Squared minimum distance between two rectangles (0 when overlapping).

    Reference form of the squared kernels the join loops inline; see
    :meth:`Rect.min_dist_sq_to_rect`.
    """
    return a.min_dist_sq_to_rect(b)


def min_max_dist_point_rect(point: Point, rect: Rect) -> float:
    """MINMAXDIST between a point and a rectangle.

    The smallest upper bound on the distance from ``point`` to the closest
    object that is guaranteed to exist inside ``rect``.  Used only as an
    optional pruning aid; best-first search does not require it but some
    tests exercise the classical inequality MINDIST <= NN-dist <= MINMAXDIST.
    """
    rm_x = rect.min_x if point.x <= (rect.min_x + rect.max_x) / 2 else rect.max_x
    rm_y = rect.min_y if point.y <= (rect.min_y + rect.max_y) / 2 else rect.max_y
    r_big_x = rect.max_x if abs(point.x - rect.min_x) >= abs(point.x - rect.max_x) else rect.min_x
    r_big_y = rect.max_y if abs(point.y - rect.min_y) >= abs(point.y - rect.max_y) else rect.min_y

    d1 = (point.x - rm_x) ** 2 + (point.y - r_big_y) ** 2
    d2 = (point.y - rm_y) ** 2 + (point.x - r_big_x) ** 2
    return math.sqrt(min(d1, d2))


def min_dist_rect_rect(a: Rect, b: Rect) -> float:
    """Minimum distance between two rectangles (0 when overlapping)."""
    return a.min_dist_to_rect(b)


def circle_contains_circle(center_outer: Point, radius_outer: float,
                           center_inner: Point, radius_inner: float) -> bool:
    """True when the inner circle lies entirely inside the outer circle.

    Used by the Zheng–Lee style kNN semantic cache: a cached kNN result
    (outer circle) can answer a new k'NN query exactly when the new query's
    k'-th-distance circle is contained in the cached circle.
    """
    return center_outer.distance_to(center_inner) + radius_inner <= radius_outer + 1e-12


def circle_contains_rect(center: Point, radius: float, rect: Rect) -> bool:
    """True when every corner of ``rect`` is within ``radius`` of ``center``."""
    corners = (
        Point(rect.min_x, rect.min_y),
        Point(rect.min_x, rect.max_y),
        Point(rect.max_x, rect.min_y),
        Point(rect.max_x, rect.max_y),
    )
    return all(center.distance_to(c) <= radius + 1e-12 for c in corners)


def rect_intersects_circle(rect: Rect, center: Point, radius: float) -> bool:
    """True when the rectangle intersects the disc of ``radius`` at ``center``."""
    return rect.min_dist_to_point(center) <= radius + 1e-12
