"""Planar geometry primitives used by the spatial index and the caches.

The whole reproduction works in a normalized unit square ``[0, 1] x [0, 1]``,
matching the paper's normalization of the NE and RD datasets.  Everything in
this package is deliberately dependency-free (pure Python floats) so that the
byte-size model in :mod:`repro.rtree.sizes` stays faithful to "an entry is an
MBR plus a pointer".
"""

from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.geometry.distance import (
    euclidean,
    min_dist_point_rect,
    min_max_dist_point_rect,
    min_dist_rect_rect,
    circle_contains_circle,
    circle_contains_rect,
)

__all__ = [
    "Point",
    "Rect",
    "euclidean",
    "min_dist_point_rect",
    "min_max_dist_point_rect",
    "min_dist_rect_rect",
    "circle_contains_circle",
    "circle_contains_rect",
]
