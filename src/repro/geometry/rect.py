"""Axis-aligned rectangles (minimum bounding rectangles).

``Rect`` is the MBR type used throughout the R-tree, the semantic cache
(query regions) and the workload generator (range-query windows).  Besides
the usual predicates it implements the rectangle *difference* decomposition
needed by semantic-cache query trimming (Ren & Dunham style remainders).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from repro._compat import DATACLASS_SLOTS
from repro.geometry.point import Point


@dataclass(frozen=True, order=True, **DATACLASS_SLOTS)
class Rect:
    """An immutable axis-aligned rectangle ``[min_x, max_x] x [min_y, max_y]``."""

    min_x: float
    min_y: float
    max_x: float
    max_y: float

    def __post_init__(self) -> None:
        if self.min_x > self.max_x or self.min_y > self.max_y:
            raise ValueError(
                "degenerate rectangle: "
                f"({self.min_x}, {self.min_y}, {self.max_x}, {self.max_y})"
            )

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @staticmethod
    def from_point(point: Point) -> "Rect":
        """A zero-area rectangle at ``point``."""
        return Rect(point.x, point.y, point.x, point.y)

    @staticmethod
    def from_center(center: Point, width: float, height: float) -> "Rect":
        """A rectangle of the given dimensions centred at ``center``."""
        half_w, half_h = width / 2.0, height / 2.0
        return Rect(center.x - half_w, center.y - half_h,
                    center.x + half_w, center.y + half_h)

    @staticmethod
    def unit() -> "Rect":
        """The unit square ``[0, 1] x [0, 1]``."""
        return Rect(0.0, 0.0, 1.0, 1.0)

    @staticmethod
    def bounding(rects: Iterable["Rect"]) -> "Rect":
        """The MBR of a non-empty collection of rectangles."""
        iterator = iter(rects)
        first = next(iterator, None)
        if first is None:
            raise ValueError("cannot bound an empty collection of rectangles")
        min_x, min_y = first.min_x, first.min_y
        max_x, max_y = first.max_x, first.max_y
        for rect in iterator:
            if rect.min_x < min_x:
                min_x = rect.min_x
            if rect.min_y < min_y:
                min_y = rect.min_y
            if rect.max_x > max_x:
                max_x = rect.max_x
            if rect.max_y > max_y:
                max_y = rect.max_y
        return Rect(min_x, min_y, max_x, max_y)

    # ------------------------------------------------------------------ #
    # basic measures
    # ------------------------------------------------------------------ #
    @property
    def width(self) -> float:
        return self.max_x - self.min_x

    @property
    def height(self) -> float:
        return self.max_y - self.min_y

    def area(self) -> float:
        """Area of the rectangle."""
        return self.width * self.height

    def margin(self) -> float:
        """Half perimeter (the R*-tree "margin" measure)."""
        return self.width + self.height

    def center(self) -> Point:
        """Centre point of the rectangle."""
        return Point((self.min_x + self.max_x) / 2.0,
                     (self.min_y + self.max_y) / 2.0)

    # ------------------------------------------------------------------ #
    # predicates
    # ------------------------------------------------------------------ #
    def intersects(self, other: "Rect") -> bool:
        """True if the rectangles share at least a boundary point."""
        return (self.min_x <= other.max_x and other.min_x <= self.max_x and
                self.min_y <= other.max_y and other.min_y <= self.max_y)

    def contains(self, other: "Rect") -> bool:
        """True if ``other`` lies entirely inside this rectangle."""
        return (self.min_x <= other.min_x and other.max_x <= self.max_x and
                self.min_y <= other.min_y and other.max_y <= self.max_y)

    def contains_point(self, point: Point) -> bool:
        """True if ``point`` lies inside (or on the border of) the rectangle."""
        return (self.min_x <= point.x <= self.max_x and
                self.min_y <= point.y <= self.max_y)

    # ------------------------------------------------------------------ #
    # combination
    # ------------------------------------------------------------------ #
    def union(self, other: "Rect") -> "Rect":
        """Smallest rectangle covering both rectangles."""
        return Rect(min(self.min_x, other.min_x), min(self.min_y, other.min_y),
                    max(self.max_x, other.max_x), max(self.max_y, other.max_y))

    def intersection(self, other: "Rect") -> Optional["Rect"]:
        """The overlapping rectangle, or ``None`` when disjoint."""
        if not self.intersects(other):
            return None
        return Rect(max(self.min_x, other.min_x), max(self.min_y, other.min_y),
                    min(self.max_x, other.max_x), min(self.max_y, other.max_y))

    def intersection_area(self, other: "Rect") -> float:
        """Area of overlap (0.0 when disjoint)."""
        overlap = self.intersection(other)
        return overlap.area() if overlap is not None else 0.0

    def enlargement(self, other: "Rect") -> float:
        """Area growth needed to also cover ``other`` (R-tree ChooseSubtree)."""
        return self.union(other).area() - self.area()

    def clipped(self, bounds: "Rect") -> Optional["Rect"]:
        """Alias of :meth:`intersection`, reads better for window clipping."""
        return self.intersection(bounds)

    # ------------------------------------------------------------------ #
    # distances
    # ------------------------------------------------------------------ #
    def min_dist_to_point(self, point: Point) -> float:
        """Minimum Euclidean distance from ``point`` to the rectangle."""
        dx = max(self.min_x - point.x, 0.0, point.x - self.max_x)
        dy = max(self.min_y - point.y, 0.0, point.y - self.max_y)
        return math.hypot(dx, dy)

    def min_dist_sq_to_point(self, point: Point) -> float:
        """Squared MINDIST from ``point`` (no square root).

        Reference formulation of the arithmetic the kNN hot loop inlines
        (``rtree/knn.py`` hoists the coordinates rather than calling this);
        the equivalence tests pin the inlined kernels against it.
        """
        dx = max(self.min_x - point.x, 0.0, point.x - self.max_x)
        dy = max(self.min_y - point.y, 0.0, point.y - self.max_y)
        return dx * dx + dy * dy

    def max_dist_to_point(self, point: Point) -> float:
        """Maximum Euclidean distance from ``point`` to the rectangle."""
        dx = max(abs(point.x - self.min_x), abs(point.x - self.max_x))
        dy = max(abs(point.y - self.min_y), abs(point.y - self.max_y))
        return math.hypot(dx, dy)

    def min_dist_to_rect(self, other: "Rect") -> float:
        """Minimum Euclidean distance between the two rectangles."""
        dx = max(self.min_x - other.max_x, 0.0, other.min_x - self.max_x)
        dy = max(self.min_y - other.max_y, 0.0, other.min_y - self.max_y)
        return math.hypot(dx, dy)

    def min_dist_sq_to_rect(self, other: "Rect") -> float:
        """Squared minimum distance between the two rectangles.

        Reference formulation of the arithmetic the join predicates inline
        (``rtree/join.py`` and the server/client join loops hoist the
        coordinates rather than calling this).
        """
        dx = max(self.min_x - other.max_x, 0.0, other.min_x - self.max_x)
        dy = max(self.min_y - other.max_y, 0.0, other.min_y - self.max_y)
        return dx * dx + dy * dy

    # ------------------------------------------------------------------ #
    # decomposition (semantic-cache trimming)
    # ------------------------------------------------------------------ #
    def difference(self, other: "Rect") -> List["Rect"]:
        """Decompose ``self − other`` into at most four disjoint rectangles.

        This is the remainder-region computation used by the semantic cache:
        the new query window minus an already-cached query window.  Returns
        an empty list when ``other`` fully covers ``self`` and ``[self]``
        when they are disjoint.
        """
        overlap = self.intersection(other)
        if overlap is None or overlap.area() <= 0.0 and not other.contains(self):
            # No overlap of positive area: nothing is trimmed away.
            if overlap is None:
                return [self]
        if other.contains(self):
            return []
        if overlap is None:
            return [self]

        pieces: List[Rect] = []
        # Left slab.
        if self.min_x < overlap.min_x:
            pieces.append(Rect(self.min_x, self.min_y, overlap.min_x, self.max_y))
        # Right slab.
        if overlap.max_x < self.max_x:
            pieces.append(Rect(overlap.max_x, self.min_y, self.max_x, self.max_y))
        # Bottom slab (between left and right slabs).
        if self.min_y < overlap.min_y:
            pieces.append(Rect(overlap.min_x, self.min_y, overlap.max_x, overlap.min_y))
        # Top slab.
        if overlap.max_y < self.max_y:
            pieces.append(Rect(overlap.min_x, overlap.max_y, overlap.max_x, self.max_y))
        return [p for p in pieces if p.area() > 0.0]

    @staticmethod
    def difference_many(target: "Rect", covers: Sequence["Rect"]) -> List["Rect"]:
        """Decompose ``target`` minus the union of ``covers`` into rectangles."""
        remainders = [target]
        for cover in covers:
            next_remainders: List[Rect] = []
            for piece in remainders:
                next_remainders.extend(piece.difference(cover))
            remainders = next_remainders
            if not remainders:
                break
        return remainders

    # ------------------------------------------------------------------ #
    # misc
    # ------------------------------------------------------------------ #
    def as_tuple(self) -> Tuple[float, float, float, float]:
        """Return ``(min_x, min_y, max_x, max_y)``."""
        return (self.min_x, self.min_y, self.max_x, self.max_y)

    def buffered(self, amount: float) -> "Rect":
        """Return a copy grown by ``amount`` on every side."""
        return Rect(self.min_x - amount, self.min_y - amount,
                    self.max_x + amount, self.max_y + amount)

    def clamped_unit(self) -> "Rect":
        """Clamp into the unit square (used by the workload generator)."""
        return Rect(
            min(max(self.min_x, 0.0), 1.0),
            min(max(self.min_y, 0.0), 1.0),
            min(max(self.max_x, 0.0), 1.0),
            min(max(self.max_y, 0.0), 1.0),
        )
