"""A two-dimensional point."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Tuple

from repro._compat import DATACLASS_SLOTS


@dataclass(frozen=True, order=True, **DATACLASS_SLOTS)
class Point:
    """An immutable point in the plane.

    Points are used for client positions, query anchors and object centroids.
    They are hashable so they can key dictionaries (e.g. per-location
    statistics in the simulator), and slotted (on 3.10+) because simulations
    create millions of them.
    """

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def translated(self, dx: float, dy: float) -> "Point":
        """Return a new point shifted by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def clamped(self, lo: float = 0.0, hi: float = 1.0) -> "Point":
        """Return a copy clamped into the square ``[lo, hi] x [lo, hi]``."""
        return Point(min(max(self.x, lo), hi), min(max(self.y, lo), hi))

    def midpoint(self, other: "Point") -> "Point":
        """Return the midpoint between this point and ``other``."""
        return Point((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)

    def as_tuple(self) -> Tuple[float, float]:
        """Return ``(x, y)``."""
        return (self.x, self.y)

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y

    @staticmethod
    def origin() -> "Point":
        """The point ``(0, 0)``."""
        return Point(0.0, 0.0)
