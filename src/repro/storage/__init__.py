"""Pluggable persistence: disk-backed R-tree pages and cache snapshots.

The paper's cost model counts page accesses; this package makes those pages
(optionally) real.  It contains:

* :mod:`repro.storage.backend` — the :class:`StorageBackend` contract every
  node store satisfies, plus the storage error types;
* :mod:`repro.storage.memory` — the in-memory backend (the default; the
  classic :class:`~repro.rtree.tree.PageStore` registered under the
  contract);
* :mod:`repro.storage.paged` — ``save_tree`` / ``load_tree`` and the
  :class:`PagedFileBackend` whose page reads are actual file reads through
  an LRU page buffer; writable stores commit through the WAL and ``pack``
  folds the log back into a fresh checkpoint;
* :mod:`repro.storage.wal` — the append-only write-ahead log: CRC-framed
  commit records, fsync'd commit markers, and torn-tail-safe recovery;
* :mod:`repro.storage.atomic` — crash-safe whole-file replacement (temp +
  fsync + rename), the required write path for every non-WAL artefact;
* :mod:`repro.storage.faults` — fault injection: crashing/garbling file
  wrappers and the exhaustive crash-point recovery matrix;
* :mod:`repro.storage.snapshot` — cache-snapshot files for warm-restart
  sessions (see :mod:`repro.sim.restart`).

The file backend is decision-identical to the in-memory one: query results
and per-query visited-page counts match exactly (asserted by the storage
equivalence tests), only the physical I/O — reported via
:meth:`StorageBackend.io_stats` — differs.
"""

from repro.storage.atomic import atomic_write_bytes, atomic_write_text
from repro.storage.backend import ReadOnlyStorageError, StorageBackend, StorageError
from repro.storage.faults import (
    FaultyFile,
    InjectedCrash,
    assert_crash_point_recovery,
    corrupt_byte,
    crash_point_offsets,
    faulty_opener,
)
from repro.storage.memory import MemoryBackend
from repro.storage.paged import (
    DEFAULT_BUFFER_PAGES,
    PagedFileBackend,
    file_crc32,
    load_tree,
    pack,
    read_header,
    save_tree,
    wal_summary,
)
from repro.storage.snapshot import (
    load_cache_snapshot,
    load_state,
    save_cache_snapshot,
    save_state,
)
from repro.storage.wal import (
    WalRecord,
    WalScan,
    WalWriter,
    repair_wal,
    scan_wal,
    wal_path,
)

__all__ = [
    "DEFAULT_BUFFER_PAGES",
    "FaultyFile",
    "InjectedCrash",
    "MemoryBackend",
    "PagedFileBackend",
    "ReadOnlyStorageError",
    "StorageBackend",
    "StorageError",
    "WalRecord",
    "WalScan",
    "WalWriter",
    "assert_crash_point_recovery",
    "atomic_write_bytes",
    "atomic_write_text",
    "corrupt_byte",
    "crash_point_offsets",
    "faulty_opener",
    "file_crc32",
    "load_cache_snapshot",
    "load_state",
    "load_tree",
    "pack",
    "read_header",
    "repair_wal",
    "save_cache_snapshot",
    "save_state",
    "save_tree",
    "scan_wal",
    "wal_path",
    "wal_summary",
]
