"""Pluggable persistence: disk-backed R-tree pages and cache snapshots.

The paper's cost model counts page accesses; this package makes those pages
(optionally) real.  It contains:

* :mod:`repro.storage.backend` — the :class:`StorageBackend` contract every
  node store satisfies, plus the storage error types;
* :mod:`repro.storage.memory` — the in-memory backend (the default; the
  classic :class:`~repro.rtree.tree.PageStore` registered under the
  contract);
* :mod:`repro.storage.paged` — ``save_tree`` / ``load_tree`` and the
  read-only :class:`PagedFileBackend` whose page reads are actual file
  reads through an LRU page buffer;
* :mod:`repro.storage.snapshot` — cache-snapshot files for warm-restart
  sessions (see :mod:`repro.sim.restart`).

The file backend is decision-identical to the in-memory one: query results
and per-query visited-page counts match exactly (asserted by the storage
equivalence tests), only the physical I/O — reported via
:meth:`StorageBackend.io_stats` — differs.
"""

from repro.storage.backend import ReadOnlyStorageError, StorageBackend, StorageError
from repro.storage.memory import MemoryBackend
from repro.storage.paged import (
    DEFAULT_BUFFER_PAGES,
    PagedFileBackend,
    load_tree,
    read_header,
    save_tree,
)
from repro.storage.snapshot import (
    load_cache_snapshot,
    load_state,
    save_cache_snapshot,
    save_state,
)

__all__ = [
    "DEFAULT_BUFFER_PAGES",
    "MemoryBackend",
    "PagedFileBackend",
    "ReadOnlyStorageError",
    "StorageBackend",
    "StorageError",
    "load_cache_snapshot",
    "load_state",
    "load_tree",
    "read_header",
    "save_cache_snapshot",
    "save_state",
    "save_tree",
]
