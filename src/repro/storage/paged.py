"""The paged file backend: R-tree nodes and objects, one per disk page.

``save_tree`` checkpoints an in-memory tree into a single ``.rpro`` file;
``load_tree`` reconstructs the tree around a :class:`PagedFileBackend` whose
page reads are actual ``seek`` + ``read`` calls against that file, filtered
through an LRU page buffer.  This makes the paper's page-access cost model
*physical*: a remainder query resumed over a cold buffer performs one file
read per visited page, while the logical ``reads`` counter stays identical
to the in-memory backend by construction (same traversal, same counter
semantics), so all visited-page accounting is backend-invariant.

Design notes (in the spirit of ZODB's FileStorage, minus the history):

* **Checkpoint, then read-only.**  Trees are built / mutated in memory and
  saved; a loaded tree is frozen (``allocate`` / ``free`` raise
  :class:`~repro.storage.backend.ReadOnlyStorageError`).  This sidesteps the
  aliasing hazards of write-back caching of mutable nodes and matches every
  workload in this repo: bulk-load once, serve queries forever.
* **One record per page.**  The slot size is the smallest multiple of 64
  bytes that fits the largest encoded node (at least ``size_model.page_bytes``),
  mirroring "an R-tree node is a page".  Object records get pages of the
  same stride in a second region; they are decoded eagerly at load time
  because every layer addresses ``tree.objects`` as a dict (payloads are
  synthetic byte *counts*, so this costs ~50 bytes per object, not 10 KB).
* **Deterministic layout.**  Pages are laid out in sorted-id order and the
  JSON header is dumped canonically, so ``save → load → save`` reproduces
  the file byte for byte — asserted by the round-trip tests.
"""

from __future__ import annotations

import io
import json
import os
import struct
import zlib
from collections import OrderedDict
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.rtree.entry import ObjectRecord
from repro.rtree.node import Node
from repro.rtree.serialize import (
    decode_node,
    decode_object,
    encode_node,
    encode_object,
    encoded_object_size,
)
from repro.rtree.sizes import SizeModel
from repro.rtree.tree import RTree
from repro.storage.atomic import atomic_write_bytes
from repro.storage.backend import ReadOnlyStorageError, StorageBackend, StorageError
from repro.storage.wal import (
    HEADER_SIZE as WAL_HEADER_SIZE,
    MAGIC as WAL_MAGIC,
    TAIL_CORRUPT,
    WalRecord,
    WalScan,
    WalWriter,
    scan_wal,
    truncate_to,
    wal_path,
)

MAGIC = b"RPROSTOR1\n"

#: Default number of decoded node pages the LRU buffer holds.
DEFAULT_BUFFER_PAGES = 64


def _slot_size(sizes: Iterable[int], minimum: int) -> int:
    """The page stride: smallest multiple of 64 covering every record."""
    largest = max(list(sizes) or [0])
    needed = max(largest, minimum, 64)
    return (needed + 63) // 64 * 64


def _size_model_dict(size_model: SizeModel) -> Dict[str, int]:
    return {
        "page_bytes": size_model.page_bytes,
        "coordinate_bytes": size_model.coordinate_bytes,
        "pointer_bytes": size_model.pointer_bytes,
        "query_header_bytes": size_model.query_header_bytes,
        "object_id_bytes": size_model.object_id_bytes,
    }


def save_tree(tree: RTree, path: str, meta: Optional[Dict] = None) -> Dict:
    """Checkpoint ``tree`` into the single-file page store at ``path``.

    Returns the header dict that was written.  ``meta`` is free-form caller
    metadata (the CLI stores the generating dataset configuration) returned
    verbatim by :func:`read_header`.  Re-saving a tree that is itself backed
    by a :class:`PagedFileBackend` carries the original meta over unless a
    new one is given, so save → load → save is byte-stable.
    """
    if meta is None and isinstance(tree.store, PagedFileBackend):
        meta = tree.store.header.get("meta")
    node_ids = sorted(tree.store.node_ids())
    encoded_nodes = [encode_node(tree.store.peek(node_id)) for node_id in node_ids]
    object_ids = sorted(tree.objects)
    page_size = _slot_size((len(blob) for blob in encoded_nodes),
                           max(tree.size_model.page_bytes, encoded_object_size()))
    header = {
        "format": 1,
        "kind": "rtree-page-store",
        "page_size": page_size,
        "root_id": tree.root_id,
        "height": tree.height,
        "node_count": len(node_ids),
        "object_count": len(object_ids),
        "node_ids": node_ids,
        "object_ids": object_ids,
        "size_model": _size_model_dict(tree.size_model),
        "max_entries": tree.max_entries,
        "min_entries": tree.min_entries,
        "meta": dict(meta or {}),
    }
    header_bytes = json.dumps(header, sort_keys=True,
                              separators=(",", ":")).encode("utf-8")
    body = io.BytesIO()
    body.write(MAGIC)
    body.write(len(header_bytes).to_bytes(8, "little"))
    body.write(header_bytes)
    for blob in encoded_nodes:
        body.write(blob.ljust(page_size, b"\0"))
    for object_id in object_ids:
        body.write(encode_object(tree.objects[object_id]).ljust(page_size, b"\0"))
    atomic_write_bytes(path, body.getvalue())
    # A checkpoint supersedes any write-ahead log next to the old file:
    # every committed batch is folded into the new pages, and replaying a
    # stale log over them would corrupt the store.
    log = wal_path(path)
    if os.path.exists(log):
        os.remove(log)
    return header


def _read_header_raw(path: str) -> Tuple[Dict, int]:
    """Read the JSON header; returns ``(header, data_start_offset)``."""
    with open(path, "rb") as handle:
        magic = handle.read(len(MAGIC))
        if magic != MAGIC:
            raise StorageError(f"{path} is not an rpro page store "
                               f"(bad magic {magic!r})")
        header_len = int.from_bytes(handle.read(8), "little")
        header = json.loads(handle.read(header_len).decode("utf-8"))
    if header.get("format") != 1 or header.get("kind") != "rtree-page-store":
        raise StorageError(f"{path}: unsupported format {header.get('format')!r} "
                           f"/ kind {header.get('kind')!r}")
    return header, len(MAGIC) + 8 + header_len


def read_header(path: str) -> Dict:
    """Read and validate the JSON header of a ``.rpro`` file."""
    return _read_header_raw(path)[0]


class PagedFileBackend(StorageBackend):
    """:class:`StorageBackend` over a ``.rpro`` page file.

    By default the backend is frozen (checkpoint-then-read-only).  With
    ``copy_on_write=True`` the file stays untouched but the backend accepts
    structural mutation: pages fetched through :meth:`edit` (and every page
    created by :meth:`allocate`) live in an in-memory *overlay* that shadows
    the file, and :meth:`free` records tombstones.  That is what lets the
    dynamic-dataset subsystem (:mod:`repro.updates`) mutate a tree served
    from disk without rewriting the checkpoint; re-checkpoint with
    :func:`save_tree` to make the mutations durable.

    Parameters
    ----------
    path:
        File written by :func:`save_tree`.
    buffer_pages:
        Capacity of the LRU buffer of decoded node pages.  ``0`` disables
        buffering entirely (every logical read is a file read).
    copy_on_write:
        Accept mutations through an in-memory page overlay (see above).
    """

    def __init__(self, path: str, buffer_pages: int = DEFAULT_BUFFER_PAGES,
                 copy_on_write: bool = False) -> None:
        if buffer_pages < 0:
            raise ValueError("buffer_pages must be >= 0")
        self.path = path
        self.buffer_pages = buffer_pages
        #: RTree consults this before mutating; COW backends accept writes.
        self.writable = copy_on_write
        self.header, data_start = _read_header_raw(path)
        self._page_size: int = self.header["page_size"]
        self._node_offsets: Dict[int, int] = {
            node_id: data_start + slot * self._page_size
            for slot, node_id in enumerate(self.header["node_ids"])}
        self._object_region_start = data_start + len(self._node_offsets) * self._page_size
        self._handle: Optional[io.BufferedReader] = open(path, "rb")
        self._buffer: "OrderedDict[int, Node]" = OrderedDict()
        # Copy-on-write state: pinned mutable pages, freed file pages and
        # the id counter for freshly allocated pages.
        self._overlay: Dict[int, Node] = {}
        self._freed: Set[int] = set()
        self._next_id = (max(self._node_offsets) + 1) if self._node_offsets else 1
        #: Attached write-ahead log; commits flow through :meth:`commit_record`.
        self.wal: Optional[WalWriter] = None
        self.reads = 0
        self.writes = 0
        self.file_reads = 0
        self.file_writes = 0
        self.buffer_hits = 0

    # ------------------------------------------------------------------ #
    # StorageBackend contract
    # ------------------------------------------------------------------ #
    def allocate(self, level: int) -> Node:
        """Create a fresh overlay page (copy-on-write mode only)."""
        if not self.writable:
            raise ReadOnlyStorageError(
                "the paged file backend is read-only; reopen it with "
                "copy_on_write=True or checkpoint a new file with "
                "repro.storage.paged.save_tree")
        node = Node(node_id=self._next_id, level=level)
        self._next_id += 1
        self._overlay[node.node_id] = node
        self.writes += 1
        return node

    def free(self, node_id: int) -> None:
        """Drop a page (copy-on-write mode only); file pages get tombstones."""
        if not self.writable:
            raise ReadOnlyStorageError(
                "the paged file backend is read-only; reopen it with "
                "copy_on_write=True or checkpoint a new file with "
                "repro.storage.paged.save_tree")
        if node_id not in self:
            raise KeyError(node_id)
        self._overlay.pop(node_id, None)
        self._buffer.pop(node_id, None)
        if node_id in self._node_offsets:
            self._freed.add(node_id)

    def get(self, node_id: int) -> Node:
        """Fetch a node; one logical read, physically served buffer-first."""
        self.reads += 1
        return self._fetch(node_id)

    def peek(self, node_id: int) -> Node:
        """Fetch a node without counting a logical read."""
        return self._fetch(node_id)

    def edit(self, node_id: int) -> Node:
        """Fetch a node for mutation, pinning it into the page overlay.

        The pinned object shadows the file page for every later fetch, so
        in-place mutations can never be lost to LRU-buffer eviction.
        """
        if not self.writable:
            raise ReadOnlyStorageError(
                "the paged file backend is read-only; reopen it with "
                "copy_on_write=True to mutate its pages")
        node = self._overlay.get(node_id)
        if node is not None:
            return node
        node = self._fetch(node_id)
        self._buffer.pop(node_id, None)
        self._overlay[node_id] = node
        return node

    def __contains__(self, node_id: int) -> bool:
        if node_id in self._overlay:
            return True
        return node_id in self._node_offsets and node_id not in self._freed

    def __len__(self) -> int:
        return len(self.node_ids())

    def node_ids(self) -> List[int]:
        """All live page ids: file slot order, then overlay allocations."""
        ids = [node_id for node_id in self._node_offsets
               if node_id not in self._freed]
        ids.extend(sorted(node_id for node_id in self._overlay
                          if node_id not in self._node_offsets))
        return ids

    def io_stats(self) -> Dict[str, int]:
        """Physical counters: file reads, WAL commit writes, buffer hits."""
        return {"file_reads": self.file_reads, "file_writes": self.file_writes,
                "buffer_hits": self.buffer_hits}

    def reset_io_stats(self) -> None:
        """Zero the physical counters; done after bulk startup scans so
        :meth:`io_stats` reflects query-driven I/O only."""
        self.file_reads = 0
        self.file_writes = 0
        self.buffer_hits = 0

    def flush(self) -> None:
        """No-op: commits are already fsync'd record by record."""

    def close(self) -> None:
        """Close the file handle (and any WAL); further reads will fail."""
        if self.wal is not None:
            self.wal.close()
            self.wal = None
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    # ------------------------------------------------------------------ #
    # durability: the write-ahead log
    # ------------------------------------------------------------------ #
    @property
    def next_page_id(self) -> int:
        """The id the next :meth:`allocate` will hand out."""
        return self._next_id

    def attach_wal(self, writer: WalWriter) -> None:
        """Bind an open WAL writer; later commits append to it."""
        self.wal = writer

    def commit_record(self, record: WalRecord) -> None:
        """Durably append one commit record (one fsync'd WAL frame)."""
        if self.wal is None:
            raise StorageError(f"{self.path}: no write-ahead log attached; "
                               f"open the store with writable=True")
        self.wal.append(record)
        self.file_writes += 1

    def apply_wal_record(self, record: WalRecord) -> None:
        """Replay one committed record's page images into the overlay.

        Replay is tolerant where :meth:`free` is strict (a freed page that
        was never materialised is simply absent) because records describe
        *post-state*: installing them must succeed on any prefix of the
        same log.  Object deltas are applied by :func:`load_tree`, which
        owns the object dict.
        """
        for node_id, blob in record.pages:
            if blob is None:
                self._overlay.pop(node_id, None)
                self._buffer.pop(node_id, None)
                if node_id in self._node_offsets:
                    self._freed.add(node_id)
            else:
                node = decode_node(blob)
                self._freed.discard(node_id)
                self._buffer.pop(node_id, None)
                self._overlay[node_id] = node
        self._next_id = max(self._next_id, record.next_page_id)

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _fetch(self, node_id: int) -> Node:
        node = self._overlay.get(node_id)
        if node is not None:
            # Pinned mutable page: served without file I/O, like a buffer hit.
            self.buffer_hits += 1
            return node
        if node_id in self._freed:
            raise KeyError(node_id)
        node = self._buffer.get(node_id)
        if node is not None:
            self.buffer_hits += 1
            self._buffer.move_to_end(node_id)
            return node
        node = self._decode_page(node_id)
        if self.buffer_pages:
            self._buffer[node_id] = node
            while len(self._buffer) > self.buffer_pages:
                self._buffer.popitem(last=False)
        return node

    def _decode_page(self, node_id: int) -> Node:
        """Read and decode one node page, mapping corruption to StorageError."""
        try:
            node = decode_node(self._read_page(self._node_offsets[node_id]))
        except (ValueError, struct.error) as error:
            raise StorageError(
                f"{self.path}: node page {node_id} is corrupt or truncated "
                f"({error})")
        if node.node_id != node_id:
            raise StorageError(
                f"{self.path}: node page slot for id {node_id} holds id "
                f"{node.node_id}")
        return node

    def _read_page(self, offset: int) -> bytes:
        if self._handle is None:
            raise StorageError(f"{self.path}: backend is closed")
        self.file_reads += 1
        self._handle.seek(offset)
        return self._handle.read(self._page_size)

    def load_objects(self) -> Dict[int, ObjectRecord]:
        """Decode the object-record region into an id-keyed dict."""
        objects: Dict[int, ObjectRecord] = {}
        for slot, object_id in enumerate(self.header["object_ids"]):
            try:
                record = decode_object(self._read_page(
                    self._object_region_start + slot * self._page_size))
            except (ValueError, struct.error) as error:
                raise StorageError(
                    f"{self.path}: object page {object_id} is corrupt or "
                    f"truncated ({error})")
            if record.object_id != object_id:
                raise StorageError(
                    f"{self.path}: object slot {slot} holds id "
                    f"{record.object_id}, directory says {object_id}")
            objects[record.object_id] = record
        return objects


def file_crc32(path: str) -> int:
    """CRC32 of a whole file — the checkpoint identity WALs are bound to."""
    crc = 0
    with open(path, "rb") as handle:
        while True:
            chunk = handle.read(1 << 20)
            if not chunk:
                return crc
            crc = zlib.crc32(chunk, crc)


def _live_wal_scan(path: str, store_crc: int) -> Optional[WalScan]:
    """Scan the store's WAL, discarding logs a later checkpoint superseded.

    Returns ``None`` when there is no log or the log belongs to an older
    checkpoint (a :func:`pack` interrupted between publishing the folded
    file and deleting the log — every record is already folded in, so the
    log is redundant, not lost).  Corrupt tails raise: silently replaying
    a prefix of a damaged log could resurrect an old version.
    """
    log = wal_path(path)
    if not os.path.exists(log):
        return None
    scan = scan_wal(log)
    if scan.store_crc is not None and scan.store_crc != store_crc:
        return None
    if scan.tail_state == TAIL_CORRUPT:
        raise StorageError(
            f"{log}: corrupt write-ahead log ({scan.tail_error}); run "
            f"`repro persist recover --force` to truncate it to the last "
            f"committed record")
    return scan


def load_tree(path: str, buffer_pages: int = DEFAULT_BUFFER_PAGES,
              copy_on_write: bool = False, writable: bool = False,
              recover: bool = False) -> RTree:
    """Reconstruct the R-tree saved at ``path`` over a paged file backend.

    Node pages are fetched lazily through the backend's LRU buffer; object
    records are decoded eagerly (see the module docstring).  By default the
    returned tree is read-only: structural mutations raise
    :class:`~repro.storage.backend.ReadOnlyStorageError`.  Three opt-ins
    relax that:

    * ``copy_on_write=True`` — accept mutations in a throwaway in-memory
      overlay; the file and its WAL (if any) stay untouched.
    * ``recover=True`` — replay the committed records of the store's
      write-ahead log into the overlay and truncate any torn tail, opening
      the tree at its newest committed version.
    * ``writable=True`` — the durable mode (implies both of the above):
      after recovery a :class:`~repro.storage.wal.WalWriter` is attached,
      so :class:`~repro.updates.applier.DatasetUpdater` batches commit
      durably.

    A store whose WAL holds committed records refuses a plain (non-
    recovering) load: serving the stale checkpoint while committed batches
    sit in the log would silently roll back acknowledged writes.
    """
    if writable:
        copy_on_write = True
        recover = True
    log = wal_path(path)
    scan: Optional[WalScan] = None
    store_crc: Optional[int] = None
    if recover:
        store_crc = file_crc32(path)
        scan = _live_wal_scan(path, store_crc)
        if scan is None and os.path.exists(log):
            # A log bound to an older checkpoint (pack interrupted between
            # publishing the folded file and deleting the log): every
            # record is already folded in, so discard it here rather than
            # tripping the writer's header check below.
            os.remove(log)
    elif os.path.exists(log) and os.path.getsize(log) > WAL_HEADER_SIZE:
        live = _read_wal_store_crc(log)
        if live is None or live == file_crc32(path):
            raise StorageError(
                f"{path} has a write-ahead log with committed records; "
                f"load it with recover=True (or writable=True), or fold "
                f"the log with pack()")
    backend = PagedFileBackend(path, buffer_pages=buffer_pages,
                               copy_on_write=copy_on_write)
    header = backend.header
    root_id: int = header["root_id"]
    height: int = header["height"]
    objects = backend.load_objects()
    if scan is not None:
        for record in scan.records:
            backend.apply_wal_record(record)
            for object_id, blob in record.objects:
                # Pop-then-set mirrors the live delete/insert sequence, so
                # dict insertion order — which downstream consumers see —
                # matches an uninterrupted run exactly.
                objects.pop(object_id, None)
                if blob is not None:
                    objects[object_id] = decode_object(blob)
        if scan.records:
            root_id = scan.records[-1].root_id
            height = scan.records[-1].height
        if scan.tail_bytes:
            truncate_to(log, scan.committed_length)
    size_model = SizeModel(**header["size_model"])
    tree = RTree.from_storage(
        store=backend, objects=objects,
        root_id=root_id, height=height,
        size_model=size_model, max_entries=header["max_entries"],
        min_entries=header["min_entries"])
    if writable:
        assert store_crc is not None
        backend.attach_wal(WalWriter(log, store_crc))
    # The eager object decode above is startup I/O, not query I/O: start
    # the physical counters from zero so io_stats() measures the workload.
    backend.reset_io_stats()
    return tree


def _read_wal_store_crc(log: str) -> Optional[int]:
    """The checkpoint CRC a log claims to belong to (``None`` if unreadable)."""
    with open(log, "rb") as handle:
        prefix = handle.read(WAL_HEADER_SIZE)
    if len(prefix) < WAL_HEADER_SIZE or not prefix.startswith(WAL_MAGIC):
        return None
    return int.from_bytes(prefix[len(WAL_MAGIC):], "little")


def pack(path: str, buffer_pages: int = DEFAULT_BUFFER_PAGES) -> Dict:
    """Fold the WAL into a fresh checkpoint, reclaiming dead pages.

    Recovers the store to its newest committed version, rewrites ``path``
    atomically with only the live pages (freed and shadowed file slots are
    dropped; overlay pages become file pages), and deletes the log.  A
    crash at any point leaves either the old checkpoint + log or the new
    checkpoint (with, at worst, a superseded log that the next open
    discards).  Returns a summary dict.
    """
    before = wal_summary(path)
    if before["tail_state"] == TAIL_CORRUPT:
        raise StorageError(
            f"{wal_path(path)}: corrupt write-ahead log; run `repro "
            f"persist recover --force` before packing")
    tree = load_tree(path, buffer_pages=buffer_pages, recover=True)
    try:
        header = save_tree(tree, path)
    finally:
        tree.store.close()
    return {
        "records_folded": before["records"],
        "wal_bytes": before["wal_bytes"],
        "committed_version": before["committed_version"],
        "dead_pages_reclaimed": before["dead_pages"],
        "pages_before": before["file_pages"],
        "pages_after": header["node_count"],
        "objects": header["object_count"],
    }


def wal_summary(path: str) -> Dict:
    """WAL facts for one store: length, committed version, dead pages.

    ``dead_pages`` counts the file page slots whose on-disk bytes are
    obsolete — freed by a committed batch, or shadowed by a newer image in
    the log — i.e. exactly what :func:`pack` reclaims.  Never modifies
    either file.
    """
    header = read_header(path)
    log = wal_path(path)
    file_ids = set(header["node_ids"])
    summary: Dict = {
        "wal_present": os.path.exists(log),
        "wal_bytes": 0,
        "records": 0,
        "committed_version": 0,
        "tail_state": "clean",
        "tail_bytes": 0,
        "tail_error": None,
        "stale": False,
        "dead_pages": 0,
        "file_pages": len(file_ids),
        "live_pages": len(file_ids),
    }
    if not summary["wal_present"]:
        return summary
    scan = scan_wal(log)
    summary["wal_bytes"] = scan.file_length
    summary["tail_state"] = scan.tail_state
    summary["tail_bytes"] = scan.tail_bytes
    summary["tail_error"] = scan.tail_error
    if scan.store_crc is not None and scan.store_crc != file_crc32(path):
        summary["stale"] = True
        return summary
    summary["records"] = len(scan.records)
    summary["committed_version"] = scan.committed_version
    freed: Set[int] = set()
    shadowed: Set[int] = set()
    overlay_live: Set[int] = set()
    for record in scan.records:
        for node_id, blob in record.pages:
            if blob is None:
                freed.add(node_id)
                overlay_live.discard(node_id)
            elif node_id in file_ids:
                shadowed.add(node_id)
            else:
                overlay_live.add(node_id)
    summary["dead_pages"] = len(file_ids & (freed | shadowed))
    summary["live_pages"] = len(file_ids - freed) + len(overlay_live)
    return summary
