"""The in-memory storage backend (the default, unchanged seed behaviour).

:class:`~repro.rtree.tree.PageStore` — the dict-of-pages store the R-tree
has always used — already satisfies the
:class:`~repro.storage.backend.StorageBackend` contract; this module
registers it as a virtual subclass and re-exports it under the backend
naming so call sites can spell intent (``MemoryBackend()``) without the
R-tree package ever importing the storage package (which would be a cycle).
"""

from __future__ import annotations

from repro.rtree.tree import PageStore
from repro.storage.backend import StorageBackend

#: The in-memory backend *is* the classic page store.
MemoryBackend = PageStore

StorageBackend.register(PageStore)
