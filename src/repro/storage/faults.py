"""Fault injection for the durable write path: simulated crashes and rot.

The WAL's guarantee — kill -9 at *any* byte always reopens to the last
committed version — is only worth claiming if it is tested at every byte.
This module supplies the machinery:

:class:`FaultyFile`
    A binary-file wrapper the :class:`~repro.storage.wal.WalWriter` accepts
    as its ``opener``.  It can stop writing after a byte budget (emulating
    a process killed mid-``write``), cut a single write short, or garble a
    byte at a chosen file offset as it streams through — each fault raises
    :class:`InjectedCrash`, after which every further operation fails like
    a dead process's would.

:func:`assert_crash_point_recovery`
    The exhaustive crash-point matrix.  Given a store whose WAL recorded N
    committed batches and the oracle state after each batch, it clones the
    store with the WAL truncated to *every* byte offset — each clone is
    exactly the file a crash at that byte would leave — reopens it with
    ``recover=True``, and asserts the recovered tree is oracle-exact for
    the newest record wholly inside the prefix, structurally valid, and
    truncated back to a clean log.

:func:`corrupt_byte`
    In-place single-byte damage, for exercising the *corrupt* (as opposed
    to torn) tail classification and the CLI's garbled-WAL error paths.
"""

from __future__ import annotations

import bisect
import os
import shutil
from typing import IO, Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.rtree.entry import ObjectRecord
from repro.rtree.validation import assert_tree_valid
from repro.storage.backend import StorageError
from repro.storage.wal import HEADER_SIZE, scan_wal, wal_path


class InjectedCrash(StorageError):
    """Raised by :class:`FaultyFile` at the configured fault point."""


class FaultyFile:
    """A binary file wrapper that fails like a crashing process.

    Parameters
    ----------
    handle:
        The real (binary, writable) file object to wrap.
    crash_after_bytes:
        Total byte budget across all writes; the write that would exceed
        it lands only the remaining prefix, then :class:`InjectedCrash`.
    short_write_at_op:
        ``(op_index, keep_bytes)`` — the ``op_index``-th write (0-based)
        lands only its first ``keep_bytes`` bytes, then crashes.
    garble_at:
        ``(file_offset, xor_mask)`` — a byte passing through a write at
        that absolute offset is XOR-damaged in flight (no crash): silent
        corruption rather than a torn tail.
    """

    def __init__(self, handle: IO[bytes],
                 crash_after_bytes: Optional[int] = None,
                 short_write_at_op: Optional[Tuple[int, int]] = None,
                 garble_at: Optional[Tuple[int, int]] = None) -> None:
        self._handle = handle
        self._crash_after_bytes = crash_after_bytes
        self._short_write_at_op = short_write_at_op
        self._garble_at = garble_at
        self._bytes_written = 0
        self._op_index = 0
        self._dead = False

    def _check_alive(self) -> None:
        if self._dead:
            raise InjectedCrash("file handle crashed by fault injection")

    def _apply_garble(self, data: bytes, start: int) -> bytes:
        if self._garble_at is None:
            return data
        offset, mask = self._garble_at
        if not start <= offset < start + len(data):
            return data
        local = offset - start
        return data[:local] + bytes([data[local] ^ mask]) + data[local + 1:]

    def write(self, data: bytes) -> int:
        self._check_alive()
        data = self._apply_garble(data, self._handle.tell())
        cut: Optional[int] = None
        if self._short_write_at_op is not None:
            op_index, keep = self._short_write_at_op
            if self._op_index == op_index:
                cut = min(keep, len(data))
        if self._crash_after_bytes is not None:
            budget = self._crash_after_bytes - self._bytes_written
            if len(data) > budget:
                cut = min(budget, len(data) if cut is None else cut)
        self._op_index += 1
        if cut is not None:
            written = self._handle.write(data[:cut])
            self._handle.flush()
            self._bytes_written += written
            self._dead = True
            raise InjectedCrash(
                f"write of {len(data)} bytes cut to {written} by injection")
        written = self._handle.write(data)
        self._bytes_written += written
        return written

    def flush(self) -> None:
        self._check_alive()
        self._handle.flush()

    def fileno(self) -> int:
        self._check_alive()
        return self._handle.fileno()

    def tell(self) -> int:
        self._check_alive()
        return self._handle.tell()

    def close(self) -> None:
        # Closing is allowed even "dead": the OS reclaims a killed
        # process's descriptors too.
        self._handle.close()

    def __getattr__(self, name: str) -> Any:
        return getattr(self._handle, name)


def faulty_opener(crash_after_bytes: Optional[int] = None,
                  short_write_at_op: Optional[Tuple[int, int]] = None,
                  garble_at: Optional[Tuple[int, int]] = None) -> Any:
    """An ``opener`` for :class:`~repro.storage.wal.WalWriter` with faults."""
    def opener(path: str, mode: str) -> FaultyFile:
        return FaultyFile(open(path, mode),  # repro: allow[DUR01]
                          crash_after_bytes=crash_after_bytes,
                          short_write_at_op=short_write_at_op,
                          garble_at=garble_at)
    return opener


def corrupt_byte(path: str, offset: int, xor_mask: int = 0xFF) -> None:
    """Damage one byte of a file in place (silent bit rot, not a crash)."""
    size = os.path.getsize(path)
    if not 0 <= offset < size:
        raise ValueError(f"offset {offset} outside file of {size} bytes")
    with open(path, "r+b") as handle:  # repro: allow[DUR01]
        handle.seek(offset)
        byte = handle.read(1)
        handle.seek(offset)
        handle.write(bytes([byte[0] ^ xor_mask]))
        handle.flush()
        os.fsync(handle.fileno())


def crash_point_offsets(store_path: str) -> List[int]:
    """Every WAL length a real crash could leave behind.

    0 (log never created) plus every byte count from the fixed header to
    the full log — prefixes shorter than the header are unreachable
    because the header is written atomically at WAL creation.
    """
    log = wal_path(store_path)
    if not os.path.exists(log):
        return [0]
    size = os.path.getsize(log)
    return [0] + list(range(HEADER_SIZE, size + 1))


def _object_state(objects: Mapping[int, ObjectRecord]) -> Dict[int, Tuple]:
    return {object_id: (record.object_id, record.size_bytes, record.mbr)
            for object_id, record in objects.items()}


def assert_crash_point_recovery(
        store_path: str,
        states_by_count: Sequence[Mapping[int, ObjectRecord]],
        work_dir: str,
        offsets: Optional[Sequence[int]] = None) -> int:
    """Prove recovery is oracle-exact for a crash at every WAL byte.

    ``states_by_count[k]`` is the expected object state after the first
    ``k`` committed records (``k = 0`` is the checkpoint state).  For each
    crash offset the store file and the WAL prefix of that length are
    cloned into ``work_dir``, reopened with ``recover=True``, and the
    recovered tree is checked against the oracle for the newest record
    wholly contained in the prefix.  Returns the number of crash points
    checked.
    """
    from repro.storage.paged import load_tree

    scan = scan_wal(wal_path(store_path))
    if scan.tail_state != "clean":
        raise StorageError(f"{store_path}: reference WAL must be clean, "
                           f"got {scan.tail_state} ({scan.tail_error})")
    if len(states_by_count) != len(scan.records) + 1:
        raise ValueError(f"need {len(scan.records) + 1} oracle states for "
                         f"{len(scan.records)} records, got "
                         f"{len(states_by_count)}")
    with open(wal_path(store_path), "rb") as handle:
        log_bytes = handle.read()
    clone_store = os.path.join(work_dir, "crash-clone.rpro")
    clone_log = wal_path(clone_store)
    shutil.copyfile(store_path, clone_store)
    checked = 0
    for length in (crash_point_offsets(store_path)
                   if offsets is None else offsets):
        if length == 0:
            if os.path.exists(clone_log):
                os.remove(clone_log)
        else:
            with open(clone_log, "wb") as handle:  # repro: allow[DUR01]
                handle.write(log_bytes[:length])
        committed = bisect.bisect_right(scan.record_ends, length)
        expected = states_by_count[committed]
        tree = load_tree(clone_store, recover=True)
        try:
            recovered = _object_state(tree.objects)
            if recovered != _object_state(expected):
                raise AssertionError(
                    f"crash at WAL byte {length}: recovered object state "
                    f"diverges from the oracle after {committed} committed "
                    f"records")
            assert_tree_valid(tree)
            replay = scan_wal(clone_log)
            if replay.tail_bytes:
                raise AssertionError(
                    f"crash at WAL byte {length}: recovery left "
                    f"{replay.tail_bytes} torn tail bytes in place")
            if len(replay.records) != committed:
                raise AssertionError(
                    f"crash at WAL byte {length}: log replays "
                    f"{len(replay.records)} records, expected {committed}")
        finally:
            tree.store.close()
        checked += 1
    return checked
