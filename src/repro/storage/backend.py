"""The pluggable node-storage protocol (paper Section 3's "disk").

The paper's cost model counts *page accesses*: every index node the server
touches while resuming a remainder query is one page read.  The seed
reproduction kept all pages in a plain dict (:class:`~repro.rtree.tree.PageStore`),
which makes page reads an accounting fiction.  This module defines the
:class:`StorageBackend` contract that lets the R-tree run over different
physical stores — the in-memory dict (the default, unchanged behaviour) or
the paged file backend of :mod:`repro.storage.paged`, where a page read that
misses the buffer is an actual ``seek`` + ``read`` against a file.

The contract is deliberately the exact surface :class:`~repro.rtree.tree.RTree`
already uses, in the spirit of ZODB's minimal storage interface: backends are
interchangeable underneath an unchanged tree, and the *logical* read/write
counters (``reads`` / ``writes``) must behave identically across backends so
the paper's visited-page accounting is backend-invariant.  Physical I/O is
reported separately via :meth:`StorageBackend.io_stats`.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Dict, Iterable, Iterator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.rtree.node import Node


class StorageError(Exception):
    """Base class for storage-backend failures."""


class ReadOnlyStorageError(StorageError):
    """A mutation was attempted on a read-only (frozen) backend.

    The paged file backend serves query workloads; trees are built (or
    mutated) in memory and checkpointed with
    :func:`repro.storage.paged.save_tree`.
    """


class StorageBackend(abc.ABC):
    """Abstract id-addressed store of R-tree node pages.

    Implementations must expose two integer counters with *logical* page
    semantics, identical across backends:

    ``reads``
        Incremented by every :meth:`get` (the paper's visited-page count).
    ``writes``
        Incremented by every :meth:`allocate`.

    :meth:`peek` never counts a logical read — maintenance and diagnostics
    code uses it — though on a paged backend it may still cause physical I/O
    (reported via :meth:`io_stats`).
    """

    reads: int
    writes: int

    @abc.abstractmethod
    def allocate(self, level: int) -> "Node":
        """Create, register and return an empty node at ``level``."""

    @abc.abstractmethod
    def get(self, node_id: int) -> "Node":
        """Fetch a node by id; counts as one logical page read."""

    @abc.abstractmethod
    def peek(self, node_id: int) -> "Node":
        """Fetch a node without counting a logical read."""

    def edit(self, node_id: int) -> "Node":
        """Fetch a node for in-place structural mutation.

        Counts no logical read.  The default is :meth:`peek` (in-memory
        stores hand out the one live object); copy-on-write backends
        override it to pin a private mutable copy so the mutation survives
        buffer eviction.  Every mutation path of
        :class:`~repro.rtree.tree.RTree` fetches through ``edit``.
        """
        return self.peek(node_id)

    @abc.abstractmethod
    def free(self, node_id: int) -> None:
        """Remove a node from the store."""

    @abc.abstractmethod
    def __contains__(self, node_id: int) -> bool:
        """True when a page with this id exists."""

    @abc.abstractmethod
    def __len__(self) -> int:
        """Number of stored pages."""

    @abc.abstractmethod
    def node_ids(self) -> Iterable[int]:
        """All stored page ids (deterministic order)."""

    def iter_nodes(self) -> Iterator["Node"]:
        """Iterate over every stored node (via :meth:`peek`)."""
        for node_id in self.node_ids():
            yield self.peek(node_id)

    # ------------------------------------------------------------------ #
    # physical I/O — backends without real I/O report zeros
    # ------------------------------------------------------------------ #
    def io_stats(self) -> Dict[str, int]:
        """Physical I/O counters: ``file_reads``, ``file_writes``, ``buffer_hits``.

        The in-memory backend performs no I/O and reports zeros; the paged
        file backend reports real ``seek``/``read`` operations and LRU-buffer
        hits.  Logical counters (``reads``/``writes``) are attributes, not
        part of this dict, because they must stay backend-invariant.
        """
        return {"file_reads": 0, "file_writes": 0, "buffer_hits": 0}

    def reset_io_stats(self) -> None:
        """Zero the physical I/O counters (no-op for in-memory stores).

        Called after bulk startup work (eager object decode, partition-tree
        construction) so :meth:`io_stats` afterwards reflects query-driven
        I/O only — the quantity buffer-effectiveness reasoning needs.
        Logical counters are never reset.
        """

    def flush(self) -> None:
        """Write any buffered state through to durable storage (no-op here)."""

    def close(self) -> None:
        """Release any underlying resources (no-op for in-memory stores)."""
