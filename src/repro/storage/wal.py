"""Write-ahead log for the paged store: atomic multi-page commits.

Dynamic fleets mutate the R-tree through :class:`~repro.updates.applier.
DatasetUpdater`; with a durable store every applied batch becomes exactly
one append-only *commit record* in a ``.rpro.wal`` sibling file.  The
design follows ZODB's ``FileStorage`` transaction log, reduced to what the
paged store needs:

* **One record per batch.**  A record carries the post-state page image of
  every node page the batch changed (or a tombstone for pages it freed),
  the object-record deltas in operational order, the new root/height, the
  page-id allocation cursor, and the :class:`~repro.updates.registry.
  VersionRegistry` dataset version the batch committed — everything replay
  needs to reconstruct the exact in-memory state.
* **Torn-write-safe framing.**  Each record is length-prefixed and
  CRC32-checksummed, and is only *committed* once its 8-byte commit marker
  is on disk; the writer fsyncs the payload before the marker and the
  marker before returning.  A crash at any byte boundary therefore leaves
  either a fully committed record or a recognisably incomplete tail.
* **Recovery = replay + truncate.**  :func:`scan_wal` walks the log,
  returning every committed record and classifying the tail: ``clean``
  (ends exactly on a commit marker), ``torn`` (an unfinished record that
  runs into end-of-file — the signature of a crash mid-commit; recovery
  truncates it), or ``corrupt`` (checksum or marker failure with further
  data behind it — not a crash artefact, so recovery refuses unless
  forced).

Byte layout::

    file   := magic "RPROWAL1\\n" <I store_crc> record*
    record := <Q payload_len> <I crc32(payload)> payload marker
    marker := "RWCOMMIT"                               # 8 bytes, fsync'd
    payload:= <Q version> <q root_id> <i height> <q next_page_id>
              <I n_pages> <I n_objects> page* object*
    page   := <q node_id> <B op> [<I len> bytes]       # op 1 = freed
    object := <q object_id> <B op> [<I len> bytes]     # op 1 = deleted

``store_crc`` is the CRC32 of the complete ``.rpro`` checkpoint the log
belongs to.  It closes the one recovery hole framing alone cannot: a crash
in :func:`~repro.storage.paged.pack` *between* atomically publishing the
folded checkpoint and deleting the now-redundant log would otherwise leave
a stale log that replays over pages it no longer describes.  With the
binding, a log whose ``store_crc`` does not match the checkpoint on disk
is recognised as superseded and discarded instead of replayed.
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass, field
from typing import Callable, IO, List, Optional, Tuple

from repro.obs import instrument as obs
from repro.storage.atomic import atomic_write_bytes
from repro.storage.backend import StorageError

MAGIC = b"RPROWAL1\n"
COMMIT_MARKER = b"RWCOMMIT"

_STORE_CRC = struct.Struct("<I")

#: Fixed prefix before the first record: magic plus the checkpoint CRC.
HEADER_SIZE = len(MAGIC) + _STORE_CRC.size

_RECORD_HEADER = struct.Struct("<QI")
_PAYLOAD_HEADER = struct.Struct("<QqiqII")
_ITEM_HEADER = struct.Struct("<qB")
_BLOB_LENGTH = struct.Struct("<I")

_OP_WRITE = 0
_OP_DROP = 1

#: Tail states :func:`scan_wal` can report.
TAIL_CLEAN = "clean"
TAIL_TORN = "torn"
TAIL_CORRUPT = "corrupt"

#: ``(id, blob)`` writes a page / upserts an object; ``(id, None)`` drops it.
Delta = Tuple[int, Optional[bytes]]

Opener = Callable[[str, str], IO[bytes]]


def wal_path(store_path: str) -> str:
    """The write-ahead-log sibling of a ``.rpro`` store file."""
    return store_path + ".wal"


@dataclass(frozen=True)
class WalRecord:
    """One committed batch: page images, object deltas and tree metadata.

    ``pages`` is sorted by node id (writes and frees interleaved — a batch
    never both writes and frees the same page, so the order is immaterial
    to replay but fixed for byte-determinism).  ``objects`` preserves the
    operational order of the batch (a *modify* is a drop followed by an
    upsert) because dict insertion order downstream must match a live run.
    """

    version: int
    root_id: int
    height: int
    next_page_id: int
    pages: Tuple[Delta, ...]
    objects: Tuple[Delta, ...]


def _encode_deltas(deltas: Tuple[Delta, ...]) -> List[bytes]:
    parts: List[bytes] = []
    for item_id, blob in deltas:
        if blob is None:
            parts.append(_ITEM_HEADER.pack(item_id, _OP_DROP))
        else:
            parts.append(_ITEM_HEADER.pack(item_id, _OP_WRITE))
            parts.append(_BLOB_LENGTH.pack(len(blob)))
            parts.append(blob)
    return parts


def encode_record(record: WalRecord) -> bytes:
    """Serialise one commit record's payload (header + CRC not included)."""
    parts = [_PAYLOAD_HEADER.pack(record.version, record.root_id,
                                  record.height, record.next_page_id,
                                  len(record.pages), len(record.objects))]
    parts.extend(_encode_deltas(record.pages))
    parts.extend(_encode_deltas(record.objects))
    return b"".join(parts)


def _decode_deltas(data: bytes, offset: int,
                   count: int) -> Tuple[List[Delta], int]:
    deltas: List[Delta] = []
    for _ in range(count):
        item_id, op = _ITEM_HEADER.unpack_from(data, offset)
        offset += _ITEM_HEADER.size
        if op == _OP_DROP:
            deltas.append((item_id, None))
        elif op == _OP_WRITE:
            (length,) = _BLOB_LENGTH.unpack_from(data, offset)
            offset += _BLOB_LENGTH.size
            if offset + length > len(data):
                raise ValueError("delta blob overruns the record payload")
            deltas.append((item_id, data[offset:offset + length]))
            offset += length
        else:
            raise ValueError(f"unknown delta op {op}")
    return deltas, offset


def decode_record(data: bytes) -> WalRecord:
    """Reconstruct a commit record from its payload bytes."""
    try:
        (version, root_id, height, next_page_id,
         n_pages, n_objects) = _PAYLOAD_HEADER.unpack_from(data, 0)
        pages, offset = _decode_deltas(data, _PAYLOAD_HEADER.size, n_pages)
        objects, offset = _decode_deltas(data, offset, n_objects)
    except struct.error as error:
        raise ValueError(f"malformed WAL record payload ({error})") from error
    if offset != len(data):
        raise ValueError(f"WAL record payload has {len(data) - offset} "
                         f"trailing bytes")
    return WalRecord(version=version, root_id=root_id, height=height,
                     next_page_id=next_page_id, pages=tuple(pages),
                     objects=tuple(objects))


@dataclass
class WalScan:
    """Everything :func:`scan_wal` learned about one log file.

    ``committed_length`` is the byte offset just past the last fully
    committed record — the truncation point recovery restores the file to
    when the tail is ``torn``.
    """

    records: List[WalRecord]
    committed_length: int
    file_length: int
    tail_state: str
    tail_error: Optional[str] = None
    #: Byte offset just past each committed record's commit marker, in log
    #: order — the exact set of offsets a crash can safely rewind to.
    record_ends: List[int] = field(default_factory=list)
    #: CRC32 of the checkpoint this log belongs to (``None`` when the log
    #: header itself is unreadable).
    store_crc: Optional[int] = None

    @property
    def committed_version(self) -> int:
        """Dataset version of the newest committed record (0 when empty)."""
        return self.records[-1].version if self.records else 0

    @property
    def tail_bytes(self) -> int:
        """Bytes past the last commit marker (0 on a clean log)."""
        return self.file_length - self.committed_length


def scan_wal(path: str) -> WalScan:
    """Walk a write-ahead log, collecting committed records.

    Never modifies the file.  A missing or empty log scans as clean and
    empty.  Classification of a bad tail: anything that simply runs out of
    bytes (short header, short payload, short or absent commit marker) is
    ``torn`` — exactly what a crash mid-append produces; a checksum or
    marker mismatch on a *complete* frame is ``corrupt`` — crashes cannot
    fabricate those, so recovery demands an explicit force.
    """
    if not os.path.exists(path):
        return WalScan(records=[], committed_length=0, file_length=0,
                       tail_state=TAIL_CLEAN)
    with open(path, "rb") as handle:
        data = handle.read()
    if not data:
        return WalScan(records=[], committed_length=0, file_length=0,
                       tail_state=TAIL_CLEAN)
    if not data.startswith(MAGIC):
        return WalScan(records=[], committed_length=0, file_length=len(data),
                       tail_state=TAIL_CORRUPT,
                       tail_error=f"bad WAL magic {data[:len(MAGIC)]!r}")
    if len(data) < HEADER_SIZE:
        # The header is written atomically at creation, so a short header
        # is damage, not a crash artefact.
        return WalScan(records=[], committed_length=0, file_length=len(data),
                       tail_state=TAIL_CORRUPT,
                       tail_error="truncated WAL header")
    (store_crc,) = _STORE_CRC.unpack_from(data, len(MAGIC))
    records: List[WalRecord] = []
    record_ends: List[int] = []
    offset = HEADER_SIZE
    committed = offset

    def bad_tail(state: str, message: str) -> WalScan:
        return WalScan(records=records, committed_length=committed,
                       file_length=len(data), tail_state=state,
                       tail_error=f"{message} (record at byte {committed})",
                       record_ends=record_ends, store_crc=store_crc)

    while offset < len(data):
        if offset + _RECORD_HEADER.size > len(data):
            return bad_tail(TAIL_TORN, "incomplete record header")
        payload_length, crc = _RECORD_HEADER.unpack_from(data, offset)
        payload_start = offset + _RECORD_HEADER.size
        marker_start = payload_start + payload_length
        frame_end = marker_start + len(COMMIT_MARKER)
        if frame_end > len(data):
            return bad_tail(TAIL_TORN, "record runs past end of file")
        payload = data[payload_start:marker_start]
        if zlib.crc32(payload) != crc:
            return bad_tail(TAIL_CORRUPT, "payload checksum mismatch")
        marker = data[marker_start:frame_end]
        if marker != COMMIT_MARKER:
            return bad_tail(TAIL_CORRUPT, f"bad commit marker {marker!r}")
        try:
            records.append(decode_record(payload))
        except ValueError as error:
            return bad_tail(TAIL_CORRUPT, str(error))
        offset = frame_end
        committed = offset
        record_ends.append(committed)
    return WalScan(records=records, committed_length=committed,
                   file_length=len(data), tail_state=TAIL_CLEAN,
                   record_ends=record_ends, store_crc=store_crc)


def wal_header(store_crc: int) -> bytes:
    """The fixed file prefix binding a log to one checkpoint."""
    return MAGIC + _STORE_CRC.pack(store_crc)


def reset_wal(path: str, store_crc: int) -> None:
    """(Re)initialise a log to an empty one bound to ``store_crc``."""
    atomic_write_bytes(path, wal_header(store_crc))


def truncate_to(path: str, committed_length: int) -> int:
    """Cut a log back to its last committed byte; returns bytes dropped."""
    if committed_length < HEADER_SIZE:
        raise ValueError(f"cannot truncate a WAL below its {HEADER_SIZE}-"
                         f"byte header (got {committed_length})")
    size = os.path.getsize(path)
    if size <= committed_length:
        return 0
    # In-place truncation of the torn tail: the bytes before the target
    # offset are exactly the committed prefix, so no rewrite is needed.
    with open(path, "r+b") as handle:  # repro: allow[DUR01]
        handle.truncate(committed_length)
        handle.flush()
        os.fsync(handle.fileno())
    return size - committed_length


def repair_wal(path: str, force: bool = False) -> WalScan:
    """Truncate a bad WAL tail so the log reopens cleanly.

    Torn tails (crash artefacts) are always dropped; corrupt tails — which
    imply bytes were damaged in place, so data past the damage may be lost
    — require ``force``.  A log whose header itself is unreadable can only
    be repaired by deleting it, which likewise requires ``force``.
    Returns the scan describing what was kept.
    """
    scan = scan_wal(path)
    if scan.tail_state == TAIL_CORRUPT and not force:
        raise StorageError(
            f"{path}: corrupt WAL tail ({scan.tail_error}); records past "
            f"byte {scan.committed_length} would be lost — pass force to "
            f"truncate anyway")
    if scan.committed_length < HEADER_SIZE:
        if scan.file_length and os.path.exists(path):
            os.remove(path)
        return scan
    if scan.tail_bytes and os.path.exists(path):
        truncate_to(path, scan.committed_length)
    return scan


class WalWriter:
    """Appends commit records with the fsync discipline recovery relies on.

    The payload (with its length prefix and CRC) is flushed and fsync'd
    *before* the commit marker is written, and the marker is fsync'd before
    :meth:`append` returns — so a record whose marker is readable is
    guaranteed complete on disk.  ``opener`` exists for the fault-injection
    harness (:mod:`repro.storage.faults`), which substitutes a file wrapper
    that dies mid-write.
    """

    def __init__(self, path: str, store_crc: int,
                 opener: Optional[Opener] = None) -> None:
        self.path = path
        self.store_crc = store_crc
        open_file: Opener = opener if opener is not None else open
        if not os.path.exists(path) or os.path.getsize(path) == 0:
            reset_wal(path, store_crc)
        else:
            with open(path, "rb") as handle:
                prefix = handle.read(HEADER_SIZE)
            if prefix != wal_header(store_crc):
                raise StorageError(
                    f"{path} is not the WAL of this checkpoint (header "
                    f"mismatch); recover or pack the store first")
        # Append-only handle: the WAL is the one artefact that grows in
        # place; its torn-tail recovery replaces rename-atomicity.
        self._handle: Optional[IO[bytes]] = open_file(path, "ab")
        self.records_written = 0
        self.bytes_written = 0

    def tell(self) -> int:
        """Current end-of-log byte offset."""
        if self._handle is None:
            raise StorageError(f"{self.path}: WAL writer is closed")
        return self._handle.tell()

    def append(self, record: WalRecord) -> int:
        """Durably append one commit record; returns the new log length."""
        handle = self._handle
        if handle is None:
            raise StorageError(f"{self.path}: WAL writer is closed")
        payload = encode_record(record)
        handle.write(_RECORD_HEADER.pack(len(payload), zlib.crc32(payload)))
        handle.write(payload)
        handle.flush()
        os.fsync(handle.fileno())
        handle.write(COMMIT_MARKER)
        handle.flush()
        os.fsync(handle.fileno())
        frame = _RECORD_HEADER.size + len(payload) + len(COMMIT_MARKER)
        self.records_written += 1
        self.bytes_written += frame
        if obs.ENABLED:
            obs.active().event("wal.append", record_bytes=frame,
                               version=record.version)
        return handle.tell()

    def close(self) -> None:
        """Close the log handle; further appends raise."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None
