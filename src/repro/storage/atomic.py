"""Crash-safe file replacement: the write-temp / fsync / rename idiom.

Every durable artefact in this repo — ``.rpro`` checkpoints, session
snapshots, shard manifests — must never be observable in a half-written
state: a process killed mid-write would otherwise leave a torn file that
poisons the next startup.  POSIX gives exactly one primitive with the
needed atomicity guarantee: ``rename`` within a filesystem.  So all
whole-file writes funnel through :func:`atomic_write_bytes` /
:func:`atomic_write_text`, which write to a temporary sibling in the same
directory, flush + ``fsync`` it, and ``os.replace`` it over the target.
Readers therefore see either the old complete file or the new complete
file, never a mixture — the same discipline ZODB applies to its index
files.

The append-only write path (the WAL) is the deliberate exception: appends
cannot be renamed into place, so :mod:`repro.storage.wal` carries its own
torn-tail recovery instead.  The DUR01 lint rule enforces that raw
``open(path, "w"/"wb")`` writes appear nowhere else in the storage layer.
"""

from __future__ import annotations

import os


def fsync_handle(fileno: int) -> None:
    """Flush kernel buffers for one file descriptor to stable storage."""
    os.fsync(fileno)


def atomic_write_bytes(path: str, data: bytes) -> None:
    """Atomically replace ``path`` with ``data`` (temp + fsync + rename)."""
    tmp_path = path + ".tmp"
    try:
        # The temporary sibling is the one place a raw write mode is the
        # mechanism of atomicity rather than a violation of it.
        with open(tmp_path, "wb") as handle:  # repro: allow[DUR01]
            handle.write(data)
            handle.flush()
            fsync_handle(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        if os.path.exists(tmp_path):
            os.remove(tmp_path)
        raise


def atomic_write_text(path: str, text: str) -> None:
    """Atomically replace ``path`` with UTF-8 ``text``."""
    atomic_write_bytes(path, text.encode("utf-8"))
