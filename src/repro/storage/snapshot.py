"""Cache-snapshot files: persisting a client's proactive cache across restarts.

A mobile client that reconnects after a crash (or an overnight shutdown)
should not start cold: its proactive cache — index-node snapshots, data
objects, EBRS/replacement metadata — is exactly the state the paper's cost
model rewards keeping.  This module writes
:meth:`repro.core.cache.ProactiveCache.state_dict` (and the session-level
superset from :meth:`repro.sim.sessions.ProactiveSession.state_dict`) to
canonical JSON files and reads them back.

The JSON is dumped *without* key sorting: the cache state embeds two
orderings the replacement policies are sensitive to (items insertion order
and leaf-set order), and Python floats round-trip exactly through JSON, so
``save → load → save`` reproduces the file byte for byte — asserted by the
round-trip tests.
"""

from __future__ import annotations

import json
from typing import Optional

from repro.core.cache import ProactiveCache
from repro.core.replacement import ReplacementPolicy
from repro.rtree.sizes import SizeModel
from repro.storage.atomic import atomic_write_text
from repro.storage.backend import StorageError

_CANONICAL = {"sort_keys": False, "separators": (",", ":")}


def dumps_state(state: dict) -> str:
    """Canonical JSON text of a state dict (order-preserving, compact)."""
    return json.dumps(state, **_CANONICAL)


def save_state(state: dict, path: str) -> None:
    """Write any state dict to ``path`` as canonical JSON, atomically.

    The temp + fsync + rename discipline means a crash mid-save can never
    leave a torn snapshot behind: ``path`` holds either the previous
    complete snapshot or the new one.
    """
    atomic_write_text(path, dumps_state(state) + "\n")


def load_state(path: str) -> dict:
    """Read a state dict previously written by :func:`save_state`.

    A file that does not parse as JSON — truncated by an interrupted copy,
    or damaged in place — raises :class:`~repro.storage.backend.
    StorageError` naming the file, rather than a bare decoding error.
    """
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    try:
        state = json.loads(text)
    except json.JSONDecodeError as error:
        raise StorageError(
            f"{path}: snapshot is truncated or corrupt ({error}); it was "
            f"not written by an atomic save_state") from error
    if not isinstance(state, dict):
        raise StorageError(f"{path}: snapshot is not a JSON object")
    return state


def save_cache_snapshot(cache: ProactiveCache, path: str) -> None:
    """Persist a proactive cache for a later warm restart."""
    save_state(cache.state_dict(), path)


def load_cache_snapshot(path: str, size_model: Optional[SizeModel] = None,
                        replacement_policy: Optional[ReplacementPolicy] = None,
                        ) -> ProactiveCache:
    """Rebuild a proactive cache from a snapshot file.

    ``replacement_policy`` (an instance) overrides the recorded policy name;
    by default the recorded name is re-instantiated.
    """
    state = load_state(path)
    if state.get("format") != 1:
        raise StorageError(f"{path}: unsupported cache snapshot format "
                           f"{state.get('format')!r}")
    return ProactiveCache.from_state_dict(state, size_model=size_model,
                                          replacement_policy=replacement_policy)
