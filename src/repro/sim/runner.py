"""Building the simulated environment and replaying traces against models."""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.datasets import make_dataset
from repro.mobility import PoissonThinkTime, make_mobility_model
from repro.rtree.bulk import bulk_load_str
from repro.rtree.partition_tree import build_partition_trees
from repro.rtree.sizes import SizeModel
from repro.rtree.tree import RTree
from repro.core.server import ServerQueryProcessor
from repro.sim.config import SimulationConfig
from repro.sim.metrics import SimulationResult
from repro.sim.sessions import ClientSession, make_session
from repro.workload.generator import QueryGenerator
from repro.workload.schedule import KnnRampSchedule
from repro.workload.trace import QueryTrace, TraceRecord


@dataclass
class SimulationEnvironment:
    """Everything shared between the caching models of one experiment."""

    config: SimulationConfig
    tree: RTree
    server: ServerQueryProcessor
    trace: QueryTrace

    @property
    def size_model(self) -> SizeModel:
        return self.tree.size_model


def build_tree(config: SimulationConfig) -> RTree:
    """Generate the dataset of ``config`` and bulk-load it into an R*-tree."""
    records = make_dataset(config.dataset_name, config.object_count,
                           seed=config.dataset_seed,
                           mean_object_bytes=config.mean_object_bytes,
                           zipf_theta=config.zipf_theta)
    size_model = SizeModel(page_bytes=config.page_bytes)
    return bulk_load_str(records, size_model=size_model)


def generate_trace(config: SimulationConfig,
                   knn_schedule: Optional[KnnRampSchedule] = None) -> QueryTrace:
    """Generate the (mobility, think time, query) trace of one client."""
    mobility = make_mobility_model(config.mobility_model, speed=config.speed,
                                   seed=config.mobility_seed)
    arrival = PoissonThinkTime(mean_seconds=config.think_time_mean,
                               seed=config.mobility_seed + 1)
    generator = QueryGenerator(window_area=config.window_area, k_max=config.k_max,
                               join_distance=config.join_distance,
                               join_window_area=config.effective_join_window_area(),
                               mix=config.query_mix, seed=config.workload_seed)
    trace = QueryTrace()
    for index in range(config.query_count):
        think = arrival.sample()
        position = mobility.advance(think)
        k_override = knn_schedule.k_at(index) if knn_schedule is not None else None
        query = generator.next_query(position, k_override=k_override)
        trace.append(TraceRecord(index=index, position=position,
                                 think_time=think, query=query))
    return trace


def build_environment(config: SimulationConfig,
                      knn_schedule: Optional[KnnRampSchedule] = None) -> SimulationEnvironment:
    """Build the dataset, the R-tree, the server and a query trace."""
    tree = build_tree(config)
    partition_trees = build_partition_trees(tree.all_nodes())
    server = ServerQueryProcessor(tree, size_model=tree.size_model,
                                  partition_trees=partition_trees)
    trace = generate_trace(config, knn_schedule=knn_schedule)
    return SimulationEnvironment(config=config, tree=tree, server=server, trace=trace)


def run_session(session: ClientSession, trace: QueryTrace,
                config: SimulationConfig) -> SimulationResult:
    """Replay ``trace`` against ``session`` and collect the metrics."""
    result = SimulationResult(model=session.name, config_summary=config.as_table())
    for record in trace:
        cost = session.process(record)
        snapshot = session.cache_snapshot(record.index)
        result.record(cost, snapshot)
    return result


def run_model(environment: SimulationEnvironment, model: str,
              replacement_policy: Optional[str] = None) -> SimulationResult:
    """Run one caching model against the environment's trace."""
    session = make_session(model, environment.tree, environment.config,
                           server=environment.server,
                           replacement_policy=replacement_policy)
    return run_session(session, environment.trace, environment.config)


def run_models(environment: SimulationEnvironment, models: Iterable[str],
               replacement_policy: Optional[str] = None) -> Dict[str, SimulationResult]:
    """Run several caching models against the same trace (paired comparison)."""
    return {model: run_model(environment, model, replacement_policy=replacement_policy)
            for model in models}


def run_comparison(config: SimulationConfig, models: Iterable[str] = ("PAG", "SEM", "APRO"),
                   knn_schedule: Optional[KnnRampSchedule] = None,
                   replacement_policy: Optional[str] = None) -> Dict[str, SimulationResult]:
    """Convenience wrapper: build an environment and run several models on it."""
    environment = build_environment(config, knn_schedule=knn_schedule)
    return run_models(environment, models, replacement_policy=replacement_policy)
