"""Building the simulated environment and replaying traces against models."""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.datasets import make_dataset
from repro.mobility import PoissonThinkTime, make_mobility_model
from repro.rtree.bulk import bulk_load_str
from repro.rtree.partition_tree import build_partition_trees
from repro.rtree.sizes import SizeModel
from repro.rtree.tree import RTree
from repro.core.server import ServerQueryProcessor
from repro.sim.config import SimulationConfig
from repro.sim.metrics import SimulationResult
from repro.sim.sessions import ClientSession, GroundTruthCache, make_session
from repro.workload.generator import QueryGenerator
from repro.workload.schedule import KnnRampSchedule
from repro.workload.trace import QueryTrace, TraceRecord


@dataclass
class SharedServerState:
    """The server-side state shared by every client of one experiment.

    One dataset, one R*-tree, one query processor and one memoised
    ground-truth store — built once and reused by every session (single-trace
    comparisons) or every fleet client (multi-client simulations).
    """

    tree: RTree
    server: ServerQueryProcessor
    ground_truth: GroundTruthCache

    @property
    def size_model(self) -> SizeModel:
        return self.tree.size_model


@dataclass
class SimulationEnvironment:
    """Everything shared between the caching models of one experiment."""

    config: SimulationConfig
    tree: RTree
    server: ServerQueryProcessor
    trace: QueryTrace
    ground_truth: Optional[GroundTruthCache] = None
    knn_schedule: Optional[KnnRampSchedule] = None

    def __post_init__(self) -> None:
        if self.ground_truth is None:
            self.ground_truth = GroundTruthCache(self.tree)

    @property
    def size_model(self) -> SizeModel:
        return self.tree.size_model


def map_maybe_parallel(task, argument_lists, max_workers: Optional[int]) -> List:
    """Run ``task(*args)`` for every args tuple, optionally in worker processes.

    The single dispatch point shared by :func:`run_models`, the sweeps and
    the fleet runner: with ``max_workers`` > 1 (and more than one task) the
    calls fan out over a :class:`ProcessPoolExecutor`; otherwise they run
    serially.  Results come back in submission order either way.  ``task``
    must be a module-level callable and all arguments picklable.
    """
    argument_lists = list(argument_lists)
    if max_workers is not None and max_workers > 1 and len(argument_lists) > 1:
        workers = min(max_workers, len(argument_lists))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(task, *args) for args in argument_lists]
            return [future.result() for future in futures]
    return [task(*args) for args in argument_lists]


def build_tree(config: SimulationConfig) -> RTree:
    """Generate the dataset of ``config`` and bulk-load it into an R*-tree."""
    records = make_dataset(config.dataset_name, config.object_count,
                           seed=config.dataset_seed,
                           mean_object_bytes=config.mean_object_bytes,
                           zipf_theta=config.zipf_theta)
    size_model = SizeModel(page_bytes=config.page_bytes)
    return bulk_load_str(records, size_model=size_model)


#: ``.rpro`` header meta key → SimulationConfig attribute it must match.
_STORE_META_FIELDS = {
    "dataset": "dataset_name",
    "object_count": "object_count",
    "dataset_seed": "dataset_seed",
    "page_bytes": "page_bytes",
    "mean_object_bytes": "mean_object_bytes",
    "zipf_theta": "zipf_theta",
}


def _check_store_meta(config: SimulationConfig, meta: dict, store_path: str) -> None:
    """Reject a store whose recorded generating config contradicts ``config``.

    Only keys actually present in the meta are checked (stores written
    outside the CLI may carry none), so a mismatch always means the caller
    mixed dataset flags between ``save-tree`` time and load time — caught
    here with a clear message instead of silently simulating a hybrid.
    """
    mismatches = [
        f"{key}: store={meta[key]!r} config={getattr(config, attribute)!r}"
        for key, attribute in _STORE_META_FIELDS.items()
        if key in meta and meta[key] != getattr(config, attribute)]
    if mismatches:
        from repro.storage.backend import StorageError
        raise StorageError(
            f"{store_path} was written for a different dataset configuration "
            f"({'; '.join(mismatches)}); rerun with matching flags or "
            f"re-save the store")


def build_shared_state(config: SimulationConfig,
                       store_path: Optional[str] = None,
                       store_buffer_pages: Optional[int] = None,
                       tree: Optional[RTree] = None,
                       store_writable: bool = False,
                       store_durable: bool = False) -> SharedServerState:
    """Build the dataset, the R-tree and the server (no trace).

    With ``store_path`` the tree is not rebuilt from the dataset seeds but
    loaded from a ``.rpro`` page store (see :mod:`repro.storage.paged`):
    the server then performs actual file reads for page accesses, with
    visited-page accounting identical to the in-memory backend.  A store
    whose recorded generating configuration contradicts ``config`` is
    rejected.  ``store_writable`` opens the store through its copy-on-write
    overlay so the dynamic-dataset subsystem can mutate the tree (the file
    itself stays untouched).  ``store_durable`` opens the durable write
    mode instead: the store recovers its write-ahead log to the newest
    committed version and attaches a writer, so every update batch commits
    durably (see :func:`repro.storage.paged.load_tree`).  Physical I/O
    counters start at zero once the state is built, so
    ``tree.store.io_stats()`` afterwards measures query-driven I/O only.

    A prebuilt ``tree`` (matching ``config``) skips the dataset rebuild —
    used by callers that already hold the deterministic tree, e.g. right
    after checkpointing it.  Mutually exclusive with ``store_path``.
    """
    if store_durable and store_path is None:
        raise ValueError("store_durable needs a store_path to log to")
    if store_path is not None:
        if tree is not None:
            raise ValueError("pass either store_path or tree, not both")
        from repro.storage.paged import DEFAULT_BUFFER_PAGES, load_tree, read_header
        _check_store_meta(config, read_header(store_path).get("meta", {}),
                          store_path)
        tree = load_tree(store_path,
                         buffer_pages=(store_buffer_pages
                                       if store_buffer_pages is not None
                                       else DEFAULT_BUFFER_PAGES),
                         copy_on_write=store_writable,
                         writable=store_durable)
    elif tree is None:
        tree = build_tree(config)
    partition_trees = build_partition_trees(tree.all_nodes())
    server = ServerQueryProcessor(tree, size_model=tree.size_model,
                                  partition_trees=partition_trees)
    # Partition-tree construction swept every page; that is startup I/O.
    tree.store.reset_io_stats()
    return SharedServerState(tree=tree, server=server,
                             ground_truth=GroundTruthCache(tree))


def replay_store_trace(config: SimulationConfig, trace: QueryTrace,
                       store_path: Optional[str] = None,
                       store_buffer_pages: Optional[int] = None,
                       tree: Optional[RTree] = None):
    """Replay ``trace`` through one APRO session; the backend-invariance probe.

    The shared kernel of ``repro persist verify`` and the ``storage_paged``
    perf scenario: returns ``(per_query_rows, logical_reads, io_stats)``
    where each row is the deterministic
    ``(server_page_reads, uplink, downlink, result_bytes, response_time)``
    tuple.  Two replays of the same trace — one in-memory, one through a
    page store — must return identical rows and logical read totals; only
    ``io_stats`` may differ.  The store handle is closed before returning.
    """
    shared = build_shared_state(config, store_path=store_path,
                                store_buffer_pages=store_buffer_pages,
                                tree=tree)
    session = make_session("APRO", shared.tree, config, server=shared.server)
    rows = [(cost.server_page_reads, cost.uplink_bytes, cost.downlink_bytes,
             cost.result_bytes, cost.response_time)
            for cost in (session.process(record) for record in trace)]
    stats = (rows, shared.tree.store.reads, shared.tree.store.io_stats())
    shared.tree.store.close()
    return stats


def generate_trace(config: SimulationConfig,
                   knn_schedule: Optional[KnnRampSchedule] = None) -> QueryTrace:
    """Generate the (mobility, think time, query) trace of one client."""
    mobility = make_mobility_model(config.mobility_model, speed=config.speed,
                                   seed=config.mobility_seed)
    arrival = PoissonThinkTime(mean_seconds=config.think_time_mean,
                               seed=config.mobility_seed + 1)
    generator = QueryGenerator(window_area=config.window_area, k_max=config.k_max,
                               join_distance=config.join_distance,
                               join_window_area=config.effective_join_window_area(),
                               mix=config.query_mix, seed=config.workload_seed)
    trace = QueryTrace()
    elapsed = 0.0
    for index in range(config.query_count):
        think = arrival.sample()
        elapsed += think
        position = mobility.advance(think)
        k_override = knn_schedule.k_at(index) if knn_schedule is not None else None
        query = generator.next_query(position, k_override=k_override)
        trace.append(TraceRecord(index=index, position=position,
                                 think_time=think, query=query,
                                 arrival_time=elapsed))
    return trace


def build_environment(config: SimulationConfig,
                      knn_schedule: Optional[KnnRampSchedule] = None,
                      store_path: Optional[str] = None) -> SimulationEnvironment:
    """Build the dataset, the R-tree, the server and a query trace.

    ``store_path`` serves the R-tree from a ``.rpro`` page store instead of
    rebuilding it in memory (see :func:`build_shared_state`).
    """
    shared = build_shared_state(config, store_path=store_path)
    trace = generate_trace(config, knn_schedule=knn_schedule)
    return SimulationEnvironment(config=config, tree=shared.tree, server=shared.server,
                                 trace=trace, ground_truth=shared.ground_truth,
                                 knn_schedule=knn_schedule)


def run_session(session: ClientSession, trace: QueryTrace,
                config: SimulationConfig) -> SimulationResult:
    """Replay ``trace`` against ``session`` and collect the metrics."""
    result = SimulationResult(model=session.name, config_summary=config.as_table())
    for record in trace:
        cost = session.process(record)
        snapshot = session.cache_snapshot(record.index)
        result.record(cost, snapshot)
    return result


def run_model(environment: SimulationEnvironment, model: str,
              replacement_policy: Optional[str] = None) -> SimulationResult:
    """Run one caching model against the environment's trace."""
    session = make_session(model, environment.tree, environment.config,
                           server=environment.server,
                           replacement_policy=replacement_policy,
                           ground_truth=environment.ground_truth)
    return run_session(session, environment.trace, environment.config)


def _run_model_worker(config: SimulationConfig, trace: QueryTrace,
                      model: str, replacement_policy: Optional[str]) -> Tuple[str, SimulationResult]:
    """Process-pool task: rebuild the server state, replay the shipped trace.

    The trace travels to the worker verbatim (it is small and picklable)
    rather than being regenerated from seeds, so a caller-supplied or
    deserialised trace runs identically in serial and parallel modes.
    """
    shared = build_shared_state(config)
    environment = SimulationEnvironment(config=config, tree=shared.tree,
                                        server=shared.server, trace=trace,
                                        ground_truth=shared.ground_truth)
    return model, run_model(environment, model, replacement_policy=replacement_policy)


def run_models(environment: SimulationEnvironment, models: Iterable[str],
               replacement_policy: Optional[str] = None,
               max_workers: Optional[int] = None) -> Dict[str, SimulationResult]:
    """Run several caching models against the same trace (paired comparison).

    With ``max_workers`` > 1 the models run in parallel worker processes;
    every worker rebuilds the deterministic server state from the (picklable)
    configuration and replays the environment's own trace, so the per-model
    byte/hit-rate metrics are identical to a serial run.  Serially, the
    models share one :class:`GroundTruthCache`, so only the first model pays
    for each ground-truth computation.
    """
    models = list(models)
    if max_workers is not None and max_workers > 1 and len(models) > 1:
        pairs = map_maybe_parallel(
            _run_model_worker,
            [(environment.config, environment.trace, model, replacement_policy)
             for model in models],
            max_workers)
        return dict(pairs)
    return {model: run_model(environment, model, replacement_policy=replacement_policy)
            for model in models}


def run_comparison(config: SimulationConfig, models: Iterable[str] = ("PAG", "SEM", "APRO"),
                   knn_schedule: Optional[KnnRampSchedule] = None,
                   replacement_policy: Optional[str] = None,
                   max_workers: Optional[int] = None,
                   store_path: Optional[str] = None) -> Dict[str, SimulationResult]:
    """Convenience wrapper: build an environment and run several models on it."""
    environment = build_environment(config, knn_schedule=knn_schedule,
                                    store_path=store_path)
    return run_models(environment, models, replacement_policy=replacement_policy,
                      max_workers=max_workers)
