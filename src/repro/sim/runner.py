"""Building the simulated environment and replaying traces against models."""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.datasets import make_dataset
from repro.mobility import PoissonThinkTime, make_mobility_model
from repro.rtree.bulk import bulk_load_str
from repro.rtree.partition_tree import build_partition_trees
from repro.rtree.sizes import SizeModel
from repro.rtree.tree import RTree
from repro.core.server import ServerQueryProcessor
from repro.sim.config import SimulationConfig
from repro.sim.metrics import SimulationResult
from repro.sim.sessions import ClientSession, GroundTruthCache, make_session
from repro.workload.generator import QueryGenerator
from repro.workload.schedule import KnnRampSchedule
from repro.workload.trace import QueryTrace, TraceRecord


@dataclass
class SharedServerState:
    """The server-side state shared by every client of one experiment.

    One dataset, one R*-tree, one query processor and one memoised
    ground-truth store — built once and reused by every session (single-trace
    comparisons) or every fleet client (multi-client simulations).
    """

    tree: RTree
    server: ServerQueryProcessor
    ground_truth: GroundTruthCache

    @property
    def size_model(self) -> SizeModel:
        return self.tree.size_model


@dataclass
class SimulationEnvironment:
    """Everything shared between the caching models of one experiment."""

    config: SimulationConfig
    tree: RTree
    server: ServerQueryProcessor
    trace: QueryTrace
    ground_truth: Optional[GroundTruthCache] = None
    knn_schedule: Optional[KnnRampSchedule] = None

    def __post_init__(self) -> None:
        if self.ground_truth is None:
            self.ground_truth = GroundTruthCache(self.tree)

    @property
    def size_model(self) -> SizeModel:
        return self.tree.size_model


def map_maybe_parallel(task, argument_lists, max_workers: Optional[int]) -> List:
    """Run ``task(*args)`` for every args tuple, optionally in worker processes.

    The single dispatch point shared by :func:`run_models`, the sweeps and
    the fleet runner: with ``max_workers`` > 1 (and more than one task) the
    calls fan out over a :class:`ProcessPoolExecutor`; otherwise they run
    serially.  Results come back in submission order either way.  ``task``
    must be a module-level callable and all arguments picklable.
    """
    argument_lists = list(argument_lists)
    if max_workers is not None and max_workers > 1 and len(argument_lists) > 1:
        workers = min(max_workers, len(argument_lists))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(task, *args) for args in argument_lists]
            return [future.result() for future in futures]
    return [task(*args) for args in argument_lists]


def build_tree(config: SimulationConfig) -> RTree:
    """Generate the dataset of ``config`` and bulk-load it into an R*-tree."""
    records = make_dataset(config.dataset_name, config.object_count,
                           seed=config.dataset_seed,
                           mean_object_bytes=config.mean_object_bytes,
                           zipf_theta=config.zipf_theta)
    size_model = SizeModel(page_bytes=config.page_bytes)
    return bulk_load_str(records, size_model=size_model)


def build_shared_state(config: SimulationConfig) -> SharedServerState:
    """Build the dataset, the R-tree and the server (no trace)."""
    tree = build_tree(config)
    partition_trees = build_partition_trees(tree.all_nodes())
    server = ServerQueryProcessor(tree, size_model=tree.size_model,
                                  partition_trees=partition_trees)
    return SharedServerState(tree=tree, server=server,
                             ground_truth=GroundTruthCache(tree))


def generate_trace(config: SimulationConfig,
                   knn_schedule: Optional[KnnRampSchedule] = None) -> QueryTrace:
    """Generate the (mobility, think time, query) trace of one client."""
    mobility = make_mobility_model(config.mobility_model, speed=config.speed,
                                   seed=config.mobility_seed)
    arrival = PoissonThinkTime(mean_seconds=config.think_time_mean,
                               seed=config.mobility_seed + 1)
    generator = QueryGenerator(window_area=config.window_area, k_max=config.k_max,
                               join_distance=config.join_distance,
                               join_window_area=config.effective_join_window_area(),
                               mix=config.query_mix, seed=config.workload_seed)
    trace = QueryTrace()
    elapsed = 0.0
    for index in range(config.query_count):
        think = arrival.sample()
        elapsed += think
        position = mobility.advance(think)
        k_override = knn_schedule.k_at(index) if knn_schedule is not None else None
        query = generator.next_query(position, k_override=k_override)
        trace.append(TraceRecord(index=index, position=position,
                                 think_time=think, query=query,
                                 arrival_time=elapsed))
    return trace


def build_environment(config: SimulationConfig,
                      knn_schedule: Optional[KnnRampSchedule] = None) -> SimulationEnvironment:
    """Build the dataset, the R-tree, the server and a query trace."""
    shared = build_shared_state(config)
    trace = generate_trace(config, knn_schedule=knn_schedule)
    return SimulationEnvironment(config=config, tree=shared.tree, server=shared.server,
                                 trace=trace, ground_truth=shared.ground_truth,
                                 knn_schedule=knn_schedule)


def run_session(session: ClientSession, trace: QueryTrace,
                config: SimulationConfig) -> SimulationResult:
    """Replay ``trace`` against ``session`` and collect the metrics."""
    result = SimulationResult(model=session.name, config_summary=config.as_table())
    for record in trace:
        cost = session.process(record)
        snapshot = session.cache_snapshot(record.index)
        result.record(cost, snapshot)
    return result


def run_model(environment: SimulationEnvironment, model: str,
              replacement_policy: Optional[str] = None) -> SimulationResult:
    """Run one caching model against the environment's trace."""
    session = make_session(model, environment.tree, environment.config,
                           server=environment.server,
                           replacement_policy=replacement_policy,
                           ground_truth=environment.ground_truth)
    return run_session(session, environment.trace, environment.config)


def _run_model_worker(config: SimulationConfig, trace: QueryTrace,
                      model: str, replacement_policy: Optional[str]) -> Tuple[str, SimulationResult]:
    """Process-pool task: rebuild the server state, replay the shipped trace.

    The trace travels to the worker verbatim (it is small and picklable)
    rather than being regenerated from seeds, so a caller-supplied or
    deserialised trace runs identically in serial and parallel modes.
    """
    shared = build_shared_state(config)
    environment = SimulationEnvironment(config=config, tree=shared.tree,
                                        server=shared.server, trace=trace,
                                        ground_truth=shared.ground_truth)
    return model, run_model(environment, model, replacement_policy=replacement_policy)


def run_models(environment: SimulationEnvironment, models: Iterable[str],
               replacement_policy: Optional[str] = None,
               max_workers: Optional[int] = None) -> Dict[str, SimulationResult]:
    """Run several caching models against the same trace (paired comparison).

    With ``max_workers`` > 1 the models run in parallel worker processes;
    every worker rebuilds the deterministic server state from the (picklable)
    configuration and replays the environment's own trace, so the per-model
    byte/hit-rate metrics are identical to a serial run.  Serially, the
    models share one :class:`GroundTruthCache`, so only the first model pays
    for each ground-truth computation.
    """
    models = list(models)
    if max_workers is not None and max_workers > 1 and len(models) > 1:
        pairs = map_maybe_parallel(
            _run_model_worker,
            [(environment.config, environment.trace, model, replacement_policy)
             for model in models],
            max_workers)
        return dict(pairs)
    return {model: run_model(environment, model, replacement_policy=replacement_policy)
            for model in models}


def run_comparison(config: SimulationConfig, models: Iterable[str] = ("PAG", "SEM", "APRO"),
                   knn_schedule: Optional[KnnRampSchedule] = None,
                   replacement_policy: Optional[str] = None,
                   max_workers: Optional[int] = None) -> Dict[str, SimulationResult]:
    """Convenience wrapper: build an environment and run several models on it."""
    environment = build_environment(config, knn_schedule=knn_schedule)
    return run_models(environment, models, replacement_policy=replacement_policy,
                      max_workers=max_workers)
