"""Warm-restart fleet sessions: kill a running fleet, resume it later.

A production deployment restarts — processes crash, clients go offline
overnight — and a proactive cache that survives the restart is worth real
bytes (the paper's whole premise is that cached state substitutes for
downlink traffic).  This module makes a fleet run *resumable*:

* :func:`run_fleet_interrupted` simulates the first ``halt_after`` events
  of the fleet's deterministic global event list, then persists one
  snapshot per client (cache + adaptive-controller + consistency-protocol
  state, via :meth:`~repro.sim.sessions.ProactiveSession.state_dict`) plus
  the fleet configuration, every cost recorded so far and — for a dynamic
  fleet — the updater snapshot into a session directory;
* :func:`resume_fleet` rebuilds the shared server state, restores every
  session and replays the *remaining* events.

Because the event list, the server state and every per-client seed are
deterministic, a killed-and-resumed run reaches exactly the same final
cache contents (same digests) and the same deterministic metrics as an
uninterrupted run — asserted by the warm-restart tests and surfaced
through the ``repro fleet --halt-after/--resume`` CLI flags.

Dynamic fleets (``--update-rate`` / ``--consistency``) resume through one
of two equivalent routes back to the halt-time tree:

* **replay** (the default) — the server tree is rebuilt at time zero and
  the pre-halt *update* events are re-applied through a fresh updater;
  queries never mutate the tree and the event list is deterministic, so
  the rebuilt tree equals the one that was killed;
* **durable** (``durable=True``, requires a disk store) — every committed
  batch already sits in the store's write-ahead log, so reopening the
  store in the durable mode (:func:`repro.storage.paged.load_tree` with
  ``writable=True``) recovers the halt-time tree directly — exactly what
  a ``kill -9``'d server process does on restart — and the resumed run
  keeps committing to the same log.

Only proactive sessions (APRO / FPRO / CPRO) are resumable; PAG and SEM
sessions raise when snapshotted, and :func:`run_fleet_interrupted` rejects
fleets containing them up front.  Sharded fleets remain non-resumable: the
router's owner table and virtual root are not part of the snapshot yet.
"""

from __future__ import annotations

import dataclasses
import os
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.cost_model import QueryCost
from repro.sim.config import SimulationConfig
from repro.sim.fleet import (
    ClientGroupSpec,
    FleetClientSpec,
    FleetConfig,
    build_dynamic_events,
    build_fleet_events,
    check_dynamic_models,
    finalize_fleet_results,
    make_dynamic_sessions,
    make_fleet_sessions,
    replay_dynamic_events,
    replay_fleet_events,
)
from repro.sim.metrics import ClientResult, FleetResult
from repro.sim.runner import build_shared_state
from repro.storage.snapshot import load_state, save_state
from repro.workload.generator import QueryMix

SESSION_FILE = "session.json"

_RESUMABLE_MODELS = ("APRO", "FPRO", "CPRO")


# --------------------------------------------------------------------------- #
# (de)serialising the fleet configuration
# --------------------------------------------------------------------------- #
def _config_dict(config: SimulationConfig) -> dict:
    # asdict recurses into nested dataclasses, so query_mix arrives as a
    # plain dict already.
    return dataclasses.asdict(config)


def _config_from_dict(data: dict) -> SimulationConfig:
    data = dict(data)
    data["query_mix"] = QueryMix(**data["query_mix"])
    return SimulationConfig(**data)


def fleet_to_dict(fleet: FleetConfig) -> dict:
    """JSON-serialisable form of a :class:`FleetConfig`."""
    return {"base": _config_dict(fleet.base),
            "groups": [dataclasses.asdict(group) for group in fleet.groups],
            "fleet_seed": fleet.fleet_seed,
            "update_rate": fleet.update_rate,
            "consistency": fleet.consistency,
            "ttl_seconds": fleet.ttl_seconds,
            "update_seed": fleet.update_seed,
            "shards": fleet.shards,
            "partitioner": fleet.partitioner}


def fleet_from_dict(data: dict) -> FleetConfig:
    """Rebuild a :class:`FleetConfig` from :func:`fleet_to_dict` output.

    Session files written before the dynamic-dataset subsystem carry no
    update fields; they resume as the static fleets they were.
    """
    groups = []
    for entry in data["groups"]:
        entry = dict(entry)
        if entry.get("query_mix") is not None:
            entry["query_mix"] = QueryMix(**entry["query_mix"])
        groups.append(ClientGroupSpec(**entry))
    return FleetConfig(base=_config_from_dict(data["base"]),
                       groups=tuple(groups), fleet_seed=data["fleet_seed"],
                       update_rate=data.get("update_rate", 0.0),
                       consistency=data.get("consistency", "none"),
                       ttl_seconds=data.get("ttl_seconds", 120.0),
                       update_seed=data.get("update_seed", 4242),
                       shards=data.get("shards"),
                       partitioner=data.get("partitioner", "grid"))


def _cost_dict(cost: QueryCost) -> dict:
    return dataclasses.asdict(cost)


def _cost_from_dict(data: dict) -> QueryCost:
    return QueryCost(**data)


def _client_entries(specs: Sequence[FleetClientSpec], sessions: Dict,
                    results: Dict[int, ClientResult]) -> List[dict]:
    """The per-client block of a session file (costs + session snapshot)."""
    return [
        {
            "client_id": spec.client_id,
            "group": spec.group,
            "model": spec.model,
            "costs": [_cost_dict(c) for c in results[spec.client_id].costs],
            "arrival_times": list(results[spec.client_id].arrival_times),
            "session": sessions[spec.client_id].state_dict(),
        }
        for spec in specs
    ]


def _restore_clients(specs: Sequence[FleetClientSpec], sessions: Dict,
                     state: dict) -> Dict[int, ClientResult]:
    """Restore every session snapshot; rebuild the per-client results."""
    results: Dict[int, ClientResult] = {}
    by_id = {entry["client_id"]: entry for entry in state["clients"]}
    for spec in specs:
        entry = by_id[spec.client_id]
        sessions[spec.client_id].restore_state(entry["session"])
        results[spec.client_id] = ClientResult(
            client_id=spec.client_id, group=spec.group, model=spec.model,
            costs=[_cost_from_dict(c) for c in entry["costs"]],
            arrival_times=list(entry["arrival_times"]))
    return results


# --------------------------------------------------------------------------- #
# halt / resume
# --------------------------------------------------------------------------- #
def run_fleet_interrupted(fleet: FleetConfig, halt_after: int, directory: str,
                          store_path: Optional[str] = None,
                          durable: bool = False) -> dict:
    """Run the first ``halt_after`` global events, then persist the session.

    Returns the session state that was written to
    ``directory/session.json``.  ``halt_after`` counts events of the global
    arrival-ordered event list (for a dynamic fleet: the merged query +
    update list, not per-client queries); the run stops *after* processing
    that many events, simulating a process killed mid-fleet.

    ``durable`` (dynamic fleets with a disk store only) commits every
    update batch to the store's write-ahead log as it runs, so
    :func:`resume_fleet` recovers the halt-time tree from the log instead
    of replaying the pre-halt update history.
    """
    if halt_after < 0:
        raise ValueError("halt_after must be non-negative")
    if fleet.is_sharded:
        raise ValueError(
            "sharded fleets (--shards) cannot be halted and resumed: the "
            "router's per-shard state is not part of the session snapshot "
            "yet")
    if durable and not fleet.is_dynamic:
        raise ValueError(
            "durable halt only applies to dynamic fleets (--update-rate / "
            "--consistency): a static fleet never writes, so there is "
            "nothing to log")
    if durable and store_path is None:
        raise ValueError("durable halt needs a disk store to log to "
                         "(pass store_path)")
    for group in fleet.groups:
        if group.model.upper() not in _RESUMABLE_MODELS:
            raise ValueError(
                f"group {group.name!r} runs {group.model}, which does not "
                f"support warm restarts; resumable models: "
                f"{', '.join(_RESUMABLE_MODELS)}")
    if fleet.is_dynamic:
        return _run_dynamic_interrupted(fleet, halt_after, directory,
                                        store_path, durable)
    specs = fleet.client_specs()
    shared = build_shared_state(fleet.base, store_path=store_path)
    try:
        sessions = make_fleet_sessions(shared, specs)
        results = {spec.client_id: ClientResult(client_id=spec.client_id,
                                                group=spec.group, model=spec.model)
                   for spec in specs}
        events = build_fleet_events(specs)
        halt_after = min(halt_after, len(events))
        replay_fleet_events(sessions, results, events[:halt_after])
    finally:
        shared.tree.store.close()

    state = {
        "format": 1,
        "kind": "fleet-session",
        "fleet": fleet_to_dict(fleet),
        "store_path": store_path,
        "processed_events": halt_after,
        "total_events": len(events),
        "clients": _client_entries(specs, sessions, results),
    }
    os.makedirs(directory, exist_ok=True)
    save_state(state, os.path.join(directory, SESSION_FILE))
    return state


def _run_dynamic_interrupted(fleet: FleetConfig, halt_after: int,
                             directory: str, store_path: Optional[str],
                             durable: bool) -> dict:
    """Dynamic half of :func:`run_fleet_interrupted`.

    Replays the merged query + update event list up to the halt point and
    snapshots the updater (counters + version registry) alongside the
    sessions.  With ``durable`` the store's write-ahead log already holds
    every committed batch when the run stops, so the session file only
    needs to record *that* the log is authoritative.
    """
    from repro.updates import DatasetUpdater
    check_dynamic_models(fleet)
    specs = fleet.client_specs()
    shared = build_shared_state(fleet.base, store_path=store_path,
                                store_writable=fleet.update_rate > 0,
                                store_durable=durable)
    try:
        updater = DatasetUpdater(shared.tree, shared.server,
                                 ground_truth=shared.ground_truth)
        sessions = make_dynamic_sessions(fleet, shared, specs, updater)
        results = {spec.client_id: ClientResult(client_id=spec.client_id,
                                                group=spec.group, model=spec.model)
                   for spec in specs}
        events = build_dynamic_events(fleet, specs)
        halt_after = min(halt_after, len(events))
        replay_dynamic_events(updater, sessions, results, events[:halt_after])
    finally:
        shared.tree.store.close()

    state = {
        "format": 1,
        "kind": "fleet-session",
        "fleet": fleet_to_dict(fleet),
        "store_path": store_path,
        "dynamic": True,
        "durable": durable,
        "processed_events": halt_after,
        "total_events": len(events),
        "updater": updater.state_dict(),
        "clients": _client_entries(specs, sessions, results),
    }
    os.makedirs(directory, exist_ok=True)
    save_state(state, os.path.join(directory, SESSION_FILE))
    return state


def resume_fleet(directory: str) -> Tuple[FleetResult, dict]:
    """Resume a halted fleet session and run it to completion.

    Returns ``(result, session_state)`` where ``result`` covers the *whole*
    run — the costs recorded before the halt plus the resumed remainder —
    exactly as an uninterrupted :func:`~repro.sim.fleet.run_fleet` would
    have reported them (wall-clock CPU fields aside).
    """
    state = load_state(os.path.join(directory, SESSION_FILE))
    if state.get("kind") != "fleet-session" or state.get("format") != 1:
        raise ValueError(f"{directory}: not a fleet session directory")
    fleet = fleet_from_dict(state["fleet"])
    specs = fleet.client_specs()
    if state.get("dynamic"):
        return _resume_dynamic(fleet, specs, state)
    shared = build_shared_state(fleet.base, store_path=state.get("store_path"))
    try:
        sessions = make_fleet_sessions(shared, specs)
        results = _restore_clients(specs, sessions, state)
        events = build_fleet_events(specs)
        replay_fleet_events(sessions, results, events[state["processed_events"]:])
        finalize_fleet_results(sessions, results)
    finally:
        shared.tree.store.close()
    return (FleetResult(clients=[results[spec.client_id] for spec in specs]),
            state)


def _resume_dynamic(fleet: FleetConfig, specs: List[FleetClientSpec],
                    state: dict) -> Tuple[FleetResult, dict]:
    """Resume a halted dynamic fleet: recover the tree, replay the rest.

    The halt-time server tree comes back by whichever route the session
    was halted with — WAL recovery (``durable``) or deterministic replay
    of the pre-halt update events — then the updater and session snapshots
    are restored and the remaining merged events replay exactly as an
    uninterrupted run would have processed them.
    """
    from repro.updates import DatasetUpdater
    durable = bool(state.get("durable"))
    processed = state["processed_events"]
    shared = build_shared_state(fleet.base,
                                store_path=state.get("store_path"),
                                store_writable=fleet.update_rate > 0,
                                store_durable=durable)
    try:
        updater = DatasetUpdater(shared.tree, shared.server,
                                 ground_truth=shared.ground_truth)
        events = build_dynamic_events(fleet, specs)
        if not durable:
            # Rebuild the halt-time tree by re-applying the pre-halt
            # update events: queries never mutate the tree and the merged
            # event list is deterministic, so the rebuilt tree equals the
            # one that was killed.  The durable route skips this — WAL
            # recovery inside build_shared_state already landed the tree
            # at the newest committed batch.
            for kind, _time, _client, payload in events[:processed]:
                if kind == "update":
                    updater.apply(payload)
        updater.restore_state(state["updater"])
        sessions = make_dynamic_sessions(fleet, shared, specs, updater)
        results = _restore_clients(specs, sessions, state)
        replay_dynamic_events(updater, sessions, results, events[processed:])
        finalize_fleet_results(sessions, results)
    finally:
        shared.tree.store.close()
    result = FleetResult(clients=[results[spec.client_id] for spec in specs])
    result.update_summary = dict(updater.summary())
    result.update_summary["consistency"] = fleet.consistency
    return result, state
