"""Client sessions: one per caching model, all driven by the same trace.

A session owns the client-side cache of its caching model, talks to the
(simulated) server and produces one :class:`~repro.core.cost_model.QueryCost`
per query.  All sessions share the same definition of the ground-truth result
set ``R`` so that hit rates and response times are directly comparable.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.updates.protocol import ConsistencyProtocol

from repro.baselines.page import PageCache
from repro.baselines.semantic import SemanticCache
from repro.core.adaptive import AdaptiveDepthController
from repro.core.cache import ProactiveCache
from repro.core.client import ClientQueryProcessor
from repro.core.cost_model import QueryCost, ResponseTimeModel
from repro.core.items import CachedObject, item_key_for_object
from repro.core.replacement import make_policy
from repro.core.server import ServerQueryProcessor
from repro.core.supporting_index import IndexForm, SupportingIndexPolicy
from repro.geometry import Point, Rect
from repro.obs.instrument import perf_clock
from repro.rtree.entry import ObjectRecord
from repro.rtree.knn import knn_search
from repro.rtree.range_search import range_search
from repro.rtree.sizes import SizeModel
from repro.rtree.tree import RTree
from repro.sim.config import SimulationConfig
from repro.sim.metrics import CacheSnapshot
from repro.workload.queries import JoinQuery, KNNQuery, Query, RangeQuery
from repro.workload.trace import TraceRecord


# --------------------------------------------------------------------------- #
# ground truth helpers
# --------------------------------------------------------------------------- #
def true_range_results(tree: RTree, query: RangeQuery) -> List[int]:
    """Ids of the true result objects of a range query."""
    return range_search(tree, query.window)


def true_knn_results(tree: RTree, query: KNNQuery) -> List[int]:
    """Ids of the true result objects of a kNN query."""
    return [object_id for object_id, _ in knn_search(tree, query.point, query.k)]


def true_join_results(tree: RTree, query: JoinQuery) -> List[int]:
    """Ids of the distinct objects participating in a qualifying join pair."""
    candidate_ids = range_search(tree, query.window)
    candidates = [tree.objects[object_id] for object_id in candidate_ids]
    participating: Set[int] = set()
    for i, left in enumerate(candidates):
        for right in candidates[i + 1:]:
            if left.mbr.min_dist_to_rect(right.mbr) <= query.threshold:
                participating.add(left.object_id)
                participating.add(right.object_id)
    return sorted(participating)


def true_results(tree: RTree, query: Query) -> List[int]:
    """Ground-truth result object ids for any supported query."""
    if isinstance(query, RangeQuery):
        return true_range_results(tree, query)
    if isinstance(query, KNNQuery):
        return true_knn_results(tree, query)
    if isinstance(query, JoinQuery):
        return true_join_results(tree, query)
    raise TypeError(f"unsupported query type {type(query)!r}")


class GroundTruthCache:
    """Memoised ground-truth result sets shared across sessions.

    Replaying the same trace against several caching models (or many fleet
    clients against one server) used to recompute ``true_results`` from
    scratch for every session.  Queries are frozen dataclasses, so one shared
    memo keyed by the query itself lets every session reuse the first
    computation.  The CPU cost measured on the first computation is *charged*
    on every reuse, so paired runs report identical server CPU regardless of
    which session happened to compute a result first.
    """

    def __init__(self, tree: RTree) -> None:
        self.tree = tree
        self._store: Dict[Query, Tuple[List[int], float]] = {}

    def __len__(self) -> int:
        return len(self._store)

    def clear(self) -> None:
        """Forget every memoised result (a server-side update made them stale)."""
        self._store.clear()

    def results_for(self, query: Query) -> Tuple[List[int], float]:
        """``(result_ids, charged_cpu_seconds)`` for ``query``."""
        entry = self._store.get(query)
        if entry is None:
            start = perf_clock()
            ids = true_results(self.tree, query)
            entry = (ids, perf_clock() - start)
            self._store[query] = entry
        return entry


# --------------------------------------------------------------------------- #
# session interface
# --------------------------------------------------------------------------- #
class ClientSession(abc.ABC):
    """One mobile client running one caching model."""

    def __init__(self, name: str, tree: RTree, config: SimulationConfig,
                 size_model: Optional[SizeModel] = None,
                 ground_truth: Optional[GroundTruthCache] = None) -> None:
        self.name = name
        self.tree = tree
        self.config = config
        self.size_model = size_model or tree.size_model
        # Explicit None check: an empty shared cache is falsy (it has __len__).
        self.ground_truth = ground_truth if ground_truth is not None else GroundTruthCache(tree)
        self.timing = ResponseTimeModel(bandwidth_bps=config.bandwidth_bps,
                                        fixed_rtt_seconds=config.fixed_rtt_seconds)

    @abc.abstractmethod
    def process(self, record: TraceRecord) -> QueryCost:
        """Answer one traced query and account for its cost."""

    @abc.abstractmethod
    def cache_snapshot(self, query_index: int) -> CacheSnapshot:
        """The cache state after the most recent query."""

    # Warm-restart persistence (see repro.storage.snapshot). ------------- #
    def state_dict(self) -> dict:
        """Serialisable session state for warm restarts (where supported)."""
        raise NotImplementedError(
            f"{self.name} sessions do not support warm-restart snapshots")

    def restore_state(self, state: dict) -> None:
        """Restore :meth:`state_dict` output (where supported)."""
        raise NotImplementedError(
            f"{self.name} sessions do not support warm-restart snapshots")

    # Convenience shared by the subclasses. ------------------------------- #
    def _object_bytes(self, object_ids: Set[int]) -> int:
        return sum(self.tree.objects[object_id].size_bytes for object_id in object_ids
                   if object_id in self.tree.objects)


# --------------------------------------------------------------------------- #
# proactive caching (FPRO / CPRO / APRO)
# --------------------------------------------------------------------------- #
class ProactiveSession(ClientSession):
    """Proactive caching with a configurable supporting-index form.

    ``consistency`` (a protocol from :mod:`repro.updates.protocol`) makes
    the session dynamic-dataset aware: before every query the protocol
    reconciles the cache with the live server (billing its handshake bytes
    into the query cost) and the client refreshes its root catalogue
    information, so server-side inserts and deletes are observed rather
    than silently served stale.  ``None`` (the default) is the untouched
    static behaviour.
    """

    def __init__(self, tree: RTree, config: SimulationConfig,
                 server: Optional[ServerQueryProcessor] = None,
                 index_form: Optional[str] = None,
                 replacement_policy: Optional[str] = None,
                 name: Optional[str] = None,
                 ground_truth: Optional[GroundTruthCache] = None,
                 consistency: Optional["ConsistencyProtocol"] = None) -> None:
        form = (index_form or config.index_form).lower()
        default_names = {"full": "FPRO", "compact": "CPRO", "adaptive": "APRO"}
        super().__init__(name or default_names.get(form, "APRO"), tree, config,
                         ground_truth=ground_truth)
        self.server = server or ServerQueryProcessor(tree, size_model=self.size_model)
        if form == "full":
            self.policy = SupportingIndexPolicy.full()
        elif form == "compact":
            self.policy = SupportingIndexPolicy.compact()
        elif form == "adaptive":
            self.policy = SupportingIndexPolicy.adaptive(initial_depth=config.initial_depth)
        else:
            raise ValueError(f"unknown index form {form!r}")
        self.controller = AdaptiveDepthController(policy=self.policy,
                                                  sensitivity=config.sensitivity,
                                                  report_period=config.adapt_report_period)
        policy_name = replacement_policy or config.replacement_policy
        self.cache = ProactiveCache(capacity_bytes=config.cache_bytes(),
                                    size_model=self.size_model,
                                    replacement_policy=make_policy(policy_name))
        self.client = ClientQueryProcessor(self.cache, root_id=self.server.root_id,
                                           root_mbr=self.server.root_mbr)
        self.consistency = consistency
        # Result ids of the most recent query (the differential property
        # harness compares these against a linear-scan oracle).
        self.last_result_ids: Set[int] = set()

    def process(self, record: TraceRecord) -> QueryCost:
        query = record.query
        self.cache.tick()
        sync = None
        if self.consistency is not None:
            sync = self.consistency.sync(
                self.cache, now=record.arrival_time,
                context={"client_position": record.position})
            # Refresh the root catalogue info: splits and condenses can
            # move the server's root between queries.
            self.client.root_id = self.server.root_id
            self.client.root_mbr = self.server.root_mbr
        cached_before = self.cache.cached_object_ids()

        execution = self.client.execute(query)
        saved_ids = set(execution.saved_objects)
        saved_bytes = sum(obj.size_bytes for obj in execution.saved_objects.values())

        cost = QueryCost(query_index=record.index, query_type=query.query_type.value,
                         saved_bytes=saved_bytes, client_cpu_seconds=execution.cpu_seconds)

        delivered_ids: Set[int] = set()
        if execution.complete:
            result_ids = saved_ids
        else:
            remainder = execution.remainder()
            uplink = remainder.size_bytes(self.size_model)
            response = self.server.execute(query, remainder, self.policy)
            delivered_ids = response.result_object_ids()
            downloaded_bytes = response.result_bytes()
            confirmed_bytes = response.confirmed_cached_bytes()
            index_bytes = (response.index_bytes(self.size_model)
                           + response.confirmation_bytes(self.size_model))

            cost.contacted_server = True
            cost.uplink_bytes = uplink
            cost.downloaded_result_bytes = downloaded_bytes
            cost.confirmed_cached_bytes = confirmed_bytes
            cost.index_downlink_bytes = index_bytes
            cost.downlink_bytes = downloaded_bytes + index_bytes
            cost.server_cpu_seconds = response.cpu_seconds
            cost.server_page_reads = response.accessed_node_count

            insert_start = perf_clock()
            context = {"client_position": record.position}
            for snapshot in response.index_snapshots:
                from repro.core.items import CachedIndexNode
                node = CachedIndexNode(node_id=snapshot.node_id, level=snapshot.level,
                                       elements={e.code: e for e in snapshot.elements})
                self.cache.insert_node_snapshot(node, snapshot.parent_id, context)
            for delivery in response.deliveries:
                if delivery.confirm_only and self.cache.has_object(delivery.record.object_id):
                    # The payload is still cached; the confirmation counts
                    # as a hit on the cached copy.
                    self.cache.touch(item_key_for_object(delivery.record.object_id))
                    continue
                # Ordinary delivery — or a confirm-only object that the
                # snapshot inserts above just evicted: the client held its
                # payload when the response arrived (nothing retransmitted),
                # so re-inserting it is a caching decision, not a download.
                cached_object = CachedObject(object_id=delivery.record.object_id,
                                             mbr=delivery.record.mbr,
                                             size_bytes=delivery.record.size_bytes)
                self.cache.insert_object(cached_object, delivery.parent_node_id, context)
            cost.client_cpu_seconds += perf_clock() - insert_start
            if self.consistency is not None:
                self.consistency.note_response(self.cache, response,
                                               now=record.arrival_time)
            result_ids = saved_ids | delivered_ids

        self.last_result_ids = set(result_ids)
        result_bytes = self._object_bytes(result_ids)
        cached_result_bytes = self._object_bytes(result_ids & cached_before)
        cost.result_bytes = result_bytes
        cost.cached_result_bytes = cached_result_bytes
        # Response time models the *query* round trip (Eq. 1); the
        # consistency handshake is a separate pre-query exchange, so its
        # bytes join the uplink/downlink totals below without inflating
        # the query's t_qr term.
        cost.response_time = self.timing.response_time(
            uplink_bytes=cost.uplink_bytes,
            downloaded_result_bytes=cost.downloaded_result_bytes,
            confirmed_cached_bytes=cost.confirmed_cached_bytes,
            total_result_bytes=result_bytes)
        if sync is not None:
            cost.sync_uplink_bytes = sync.uplink_bytes
            cost.sync_downlink_bytes = sync.downlink_bytes
            cost.refreshed_items = sync.refreshed_items
            cost.invalidated_items = sync.dropped_items
            cost.uplink_bytes += sync.uplink_bytes
            cost.downlink_bytes += sync.downlink_bytes
            if sync.contacted_server:
                cost.contacted_server = True
        self.controller.record_query(cached_result_bytes, saved_bytes)
        return cost

    def cache_snapshot(self, query_index: int) -> CacheSnapshot:
        return CacheSnapshot(query_index=query_index,
                             used_bytes=self.cache.used_bytes,
                             index_bytes=self.cache.index_bytes(),
                             object_bytes=self.cache.object_bytes(),
                             item_count=len(self.cache),
                             depth=self.policy.depth if self.policy.form is IndexForm.ADAPTIVE
                             else self.policy.effective_depth(10**6))

    # -- warm-restart persistence ----------------------------------------- #
    # repro: allow[STM01] server/client/policy are rebuilt from the run
    # configuration; last_result_ids is a per-run transient re-derived from
    # the first post-resume response.
    def state_dict(self) -> dict:
        """Everything a warm restart needs to resume this session exactly.

        The cache (items + replacement metadata + orderings), the adaptive
        depth controller's fmr window, the supporting-index depth and — for
        dynamic fleets — the consistency protocol's per-session tables
        (TTL shipping stamps / version stamps).  The query processor and
        the server connection are stateless and are rebuilt from the
        configuration on resume.
        """
        state = {
            "format": 1,
            "kind": "proactive-session",
            "name": self.name,
            "cache": self.cache.state_dict(),
            "controller": self.controller.state_dict(),
        }
        if self.consistency is not None:
            state["consistency"] = self.consistency.state_dict()
        return state

    def restore_state(self, state: dict) -> None:
        """Adopt a :meth:`state_dict` snapshot taken from an equivalent session.

        The session must have been constructed with the same configuration
        (model, cache budget, replacement policy, consistency mode) that
        produced the snapshot; only the mutable state is transplanted.
        """
        if state.get("kind") != "proactive-session":
            raise ValueError(f"not a proactive-session snapshot: "
                             f"{state.get('kind')!r}")
        self.cache = ProactiveCache.from_state_dict(
            state["cache"], size_model=self.size_model,
            replacement_policy=self.cache.replacement_policy)
        self.controller.load_state_dict(state["controller"])
        self.client = ClientQueryProcessor(self.cache, root_id=self.server.root_id,
                                           root_mbr=self.server.root_mbr)
        snapshot = state.get("consistency")
        if snapshot is not None:
            if self.consistency is None:
                raise ValueError(
                    "snapshot carries consistency-protocol state but this "
                    "session was built without a protocol; resume with the "
                    "fleet configuration that produced the snapshot")
            self.consistency.restore_state(snapshot)


# --------------------------------------------------------------------------- #
# page caching (PAG)
# --------------------------------------------------------------------------- #
class PageCachingSession(ClientSession):
    """Page/object caching with LRU replacement and an id-list uplink protocol."""

    def __init__(self, tree: RTree, config: SimulationConfig,
                 name: str = "PAG",
                 ground_truth: Optional[GroundTruthCache] = None) -> None:
        super().__init__(name, tree, config, ground_truth=ground_truth)
        self.cache = PageCache(capacity_bytes=config.cache_bytes())

    def process(self, record: TraceRecord) -> QueryCost:
        query = record.query
        start = perf_clock()
        cached_before = self.cache.object_ids()

        true_ids, server_cpu = self.ground_truth.results_for(query)
        result_ids = set(true_ids)

        # Uplink: the query plus the identifiers of every cached object.
        uplink = query.descriptor_bytes(self.size_model)
        uplink += self.size_model.id_list_bytes(len(cached_before))

        cached_hits = result_ids & cached_before
        missing = result_ids - cached_before
        downloaded_bytes = self._object_bytes(missing)
        confirmed_bytes = self._object_bytes(cached_hits)

        for object_id in missing:
            self.cache.insert(self.tree.objects[object_id])
        for object_id in cached_hits:
            self.cache.touch(object_id)

        result_bytes = self._object_bytes(result_ids)
        cost = QueryCost(query_index=record.index, query_type=query.query_type.value,
                         uplink_bytes=uplink, downlink_bytes=downloaded_bytes,
                         downloaded_result_bytes=downloaded_bytes,
                         confirmed_cached_bytes=confirmed_bytes,
                         result_bytes=result_bytes,
                         cached_result_bytes=confirmed_bytes,
                         saved_bytes=0.0, contacted_server=True,
                         server_cpu_seconds=server_cpu)
        cost.response_time = self.timing.response_time(
            uplink_bytes=uplink, downloaded_result_bytes=downloaded_bytes,
            confirmed_cached_bytes=confirmed_bytes, total_result_bytes=result_bytes)
        # ``server_cpu`` is the charged (possibly memoised) cost, which can
        # exceed the wall time actually elapsed on a ground-truth cache hit.
        cost.client_cpu_seconds = max(0.0, perf_clock() - start - server_cpu)
        return cost

    def cache_snapshot(self, query_index: int) -> CacheSnapshot:
        return CacheSnapshot(query_index=query_index, used_bytes=self.cache.used_bytes,
                             index_bytes=0, object_bytes=self.cache.used_bytes,
                             item_count=len(self.cache), depth=0)


# --------------------------------------------------------------------------- #
# semantic caching (SEM)
# --------------------------------------------------------------------------- #
class SemanticCachingSession(ClientSession):
    """Semantic caching for range and kNN queries; joins bypass the cache."""

    def __init__(self, tree: RTree, config: SimulationConfig,
                 replacement: str = "FAR", name: str = "SEM",
                 ground_truth: Optional[GroundTruthCache] = None) -> None:
        super().__init__(name, tree, config, ground_truth=ground_truth)
        self.cache = SemanticCache(capacity_bytes=config.cache_bytes(),
                                   size_model=self.size_model, replacement=replacement)

    def process(self, record: TraceRecord) -> QueryCost:
        query = record.query
        self.cache.tick()
        start = perf_clock()
        cached_before = self.cache.cached_object_ids()

        if isinstance(query, RangeQuery):
            cost, server_cpu = self._process_range(record, query)
        elif isinstance(query, KNNQuery):
            cost, server_cpu = self._process_knn(record, query)
        else:
            cost, server_cpu = self._process_join(record, query)

        result_ids = set(self.ground_truth.results_for(query)[0])
        cost.result_bytes = self._object_bytes(result_ids)
        cost.cached_result_bytes = self._object_bytes(result_ids & cached_before)
        cost.response_time = self.timing.response_time(
            uplink_bytes=cost.uplink_bytes,
            downloaded_result_bytes=cost.downloaded_result_bytes,
            confirmed_cached_bytes=cost.confirmed_cached_bytes,
            total_result_bytes=cost.result_bytes)
        cost.client_cpu_seconds = max(0.0, perf_clock() - start - server_cpu)
        cost.server_cpu_seconds = server_cpu
        return cost

    # -- range ----------------------------------------------------------- #
    def _process_range(self, record: TraceRecord, query: RangeQuery) -> Tuple[QueryCost, float]:
        cost = QueryCost(query_index=record.index, query_type=query.query_type.value)
        saved, remainders = self.cache.probe_range(query.window)
        cost.saved_bytes = sum(obj.size_bytes for obj in saved.values())
        server_cpu = 0.0
        fetched_records: List[ObjectRecord] = []
        if remainders:
            cost.contacted_server = True
            cost.uplink_bytes = (query.descriptor_bytes(self.size_model)
                                 + len(remainders) * self.size_model.rect_bytes())
            server_start = perf_clock()
            fetched_ids: Set[int] = set()
            for remainder in remainders:
                fetched_ids.update(range_search(self.tree, remainder))
            server_cpu = perf_clock() - server_start
            fetched_records = [self.tree.objects[object_id] for object_id in sorted(fetched_ids)]
            downloaded = sum(r.size_bytes for r in fetched_records)
            cost.downloaded_result_bytes = downloaded
            cost.downlink_bytes = downloaded
        all_records = ([self.tree.objects[oid] for oid in saved] + fetched_records)
        # Deduplicate while preserving the full window as the cached region.
        unique: Dict[int, ObjectRecord] = {r.object_id: r for r in all_records}
        self.cache.insert_range_region(query.window, unique.values(),
                                       client_position=record.position)
        return cost, server_cpu

    # -- kNN -------------------------------------------------------------- #
    def _process_knn(self, record: TraceRecord, query: KNNQuery) -> Tuple[QueryCost, float]:
        cost = QueryCost(query_index=record.index, query_type=query.query_type.value)
        local = self.cache.probe_knn(query.point, query.k)
        if local is not None:
            cost.saved_bytes = sum(obj.size_bytes for obj in local)
            return cost, 0.0
        cost.contacted_server = True
        cost.uplink_bytes = query.descriptor_bytes(self.size_model)
        result_ids, server_cpu = self.ground_truth.results_for(query)
        records = [self.tree.objects[object_id] for object_id in result_ids]
        downloaded = sum(r.size_bytes for r in records)
        cost.downloaded_result_bytes = downloaded
        cost.downlink_bytes = downloaded
        self.cache.insert_knn_region(query.point, query.k, records,
                                     client_position=record.position)
        return cost, server_cpu

    # -- join -------------------------------------------------------------- #
    def _process_join(self, record: TraceRecord, query: JoinQuery) -> Tuple[QueryCost, float]:
        cost = QueryCost(query_index=record.index, query_type=query.query_type.value)
        cost.contacted_server = True
        cost.uplink_bytes = query.descriptor_bytes(self.size_model)
        result_ids, server_cpu = self.ground_truth.results_for(query)
        downloaded = self._object_bytes(set(result_ids))
        cost.downloaded_result_bytes = downloaded
        cost.downlink_bytes = downloaded
        # Semantic caching has no region type for joins; results are not cached.
        return cost, server_cpu

    def cache_snapshot(self, query_index: int) -> CacheSnapshot:
        return CacheSnapshot(query_index=query_index, used_bytes=self.cache.used_bytes,
                             index_bytes=self.cache.descriptor_bytes(),
                             object_bytes=self.cache.object_bytes(),
                             item_count=len(self.cache), depth=0)


# --------------------------------------------------------------------------- #
# factory
# --------------------------------------------------------------------------- #
def make_session(model: str, tree: RTree, config: SimulationConfig,
                 server: Optional[ServerQueryProcessor] = None,
                 replacement_policy: Optional[str] = None,
                 ground_truth: Optional[GroundTruthCache] = None,
                 consistency: Optional["ConsistencyProtocol"] = None) -> ClientSession:
    """Create a session by the paper's model name.

    Supported names: ``PAG``, ``SEM``, ``APRO``, ``FPRO``, ``CPRO``.
    Passing a shared :class:`GroundTruthCache` lets several sessions over the
    same tree reuse each other's ground-truth computations.  ``consistency``
    attaches a cache-consistency protocol (dynamic-dataset fleets); it is
    only supported by the proactive models.
    """
    key = model.upper()
    if consistency is not None and key not in ("APRO", "FPRO", "CPRO"):
        raise ValueError(f"model {key} does not support a consistency "
                         f"protocol; use APRO, FPRO or CPRO")
    if key == "PAG":
        return PageCachingSession(tree, config, ground_truth=ground_truth)
    if key == "SEM":
        return SemanticCachingSession(tree, config, ground_truth=ground_truth)
    if key in ("APRO", "FPRO", "CPRO"):
        form = {"APRO": "adaptive", "FPRO": "full", "CPRO": "compact"}[key]
        return ProactiveSession(tree, config, server=server, index_form=form,
                                replacement_policy=replacement_policy, name=key,
                                ground_truth=ground_truth,
                                consistency=consistency)
    raise ValueError(f"unknown caching model {model!r}; "
                     "expected one of PAG, SEM, APRO, FPRO, CPRO")
