"""Simulation results: per-query costs, cache-state snapshots and summaries."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.cost_model import CostAccumulator, QueryCost


@dataclass(frozen=True)
class CacheSnapshot:
    """State of the client cache right after a query completed."""

    query_index: int
    used_bytes: int
    index_bytes: int
    object_bytes: int
    item_count: int
    depth: int

    @property
    def index_fraction(self) -> float:
        """The paper's ``i/c``: share of the *used* cache occupied by index."""
        if self.used_bytes <= 0:
            return 0.0
        return self.index_bytes / self.used_bytes


@dataclass
class SimulationResult:
    """Everything measured while replaying one trace against one caching model."""

    model: str
    config_summary: Dict[str, str] = field(default_factory=dict)
    accumulator: CostAccumulator = field(default_factory=CostAccumulator)
    snapshots: List[CacheSnapshot] = field(default_factory=list)

    # ------------------------------------------------------------------ #
    # recording
    # ------------------------------------------------------------------ #
    def record(self, cost: QueryCost, snapshot: CacheSnapshot) -> None:
        """Record one query's cost and the post-query cache state."""
        self.accumulator.add(cost)
        self.snapshots.append(snapshot)

    @property
    def costs(self) -> List[QueryCost]:
        """The per-query cost records."""
        return self.accumulator.costs

    # ------------------------------------------------------------------ #
    # headline metrics (Figure 6)
    # ------------------------------------------------------------------ #
    def summary(self) -> Dict[str, float]:
        """The paper's headline metrics for this run."""
        acc = self.accumulator
        return {
            "uplink_bytes": acc.mean_uplink_bytes(),
            "downlink_bytes": acc.mean_downlink_bytes(),
            "cache_hit_rate": acc.cache_hit_rate(),
            "byte_hit_rate": acc.byte_hit_rate(),
            "false_miss_rate": acc.false_miss_rate(),
            "response_time": acc.mean_response_time(),
            "client_cpu_ms": acc.mean_client_cpu_seconds() * 1000.0,
            "server_cpu_ms": acc.mean_server_cpu_seconds() * 1000.0,
            "server_contact_rate": acc.server_contact_rate(),
        }

    # ------------------------------------------------------------------ #
    # windowed time series (Figure 11)
    # ------------------------------------------------------------------ #
    def _windows(self, window: int) -> List[List[QueryCost]]:
        costs = self.costs
        return [costs[start:start + window] for start in range(0, len(costs), window)]

    def windowed_false_miss_rate(self, window: int) -> List[float]:
        """fmr per window of ``window`` consecutive queries."""
        series = []
        for chunk in self._windows(window):
            cached = sum(c.cached_result_bytes for c in chunk)
            false = sum(c.false_miss_bytes for c in chunk)
            series.append(false / cached if cached else 0.0)
        return series

    def windowed_response_time(self, window: int) -> List[float]:
        """Mean response time per window."""
        series = []
        for chunk in self._windows(window):
            series.append(sum(c.response_time for c in chunk) / len(chunk) if chunk else 0.0)
        return series

    def windowed_index_fraction(self, window: int) -> List[float]:
        """Mean index/cache share (``i/c``) per window."""
        series = []
        snapshots = self.snapshots
        for start in range(0, len(snapshots), window):
            chunk = snapshots[start:start + window]
            if not chunk:
                series.append(0.0)
                continue
            series.append(sum(s.index_fraction for s in chunk) / len(chunk))
        return series

    def windowed_depth(self, window: int) -> List[float]:
        """Mean adaptive depth ``d`` per window."""
        series = []
        snapshots = self.snapshots
        for start in range(0, len(snapshots), window):
            chunk = snapshots[start:start + window]
            if not chunk:
                series.append(0.0)
                continue
            series.append(sum(s.depth for s in chunk) / len(chunk))
        return series
