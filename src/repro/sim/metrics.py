"""Simulation results: per-query costs, cache-state snapshots and summaries.

Two result granularities live here:

* :class:`SimulationResult` — one trace replayed against one caching model
  (the paper's single-client experiments);
* :class:`FleetResult` — many heterogeneous clients sharing one server
  (the fleet simulations), aggregated per client, per group and for the
  server as a whole (:class:`ServerLoad`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.cost_model import CostAccumulator, QueryCost


@dataclass(frozen=True)
class CacheSnapshot:
    """State of the client cache right after a query completed."""

    query_index: int
    used_bytes: int
    index_bytes: int
    object_bytes: int
    item_count: int
    depth: int

    @property
    def index_fraction(self) -> float:
        """The paper's ``i/c``: share of the *used* cache occupied by index."""
        if self.used_bytes <= 0:
            return 0.0
        return self.index_bytes / self.used_bytes


@dataclass
class SimulationResult:
    """Everything measured while replaying one trace against one caching model."""

    model: str
    config_summary: Dict[str, str] = field(default_factory=dict)
    accumulator: CostAccumulator = field(default_factory=CostAccumulator)
    snapshots: List[CacheSnapshot] = field(default_factory=list)

    # ------------------------------------------------------------------ #
    # recording
    # ------------------------------------------------------------------ #
    def record(self, cost: QueryCost, snapshot: CacheSnapshot) -> None:
        """Record one query's cost and the post-query cache state."""
        self.accumulator.add(cost)
        self.snapshots.append(snapshot)

    @property
    def costs(self) -> List[QueryCost]:
        """The per-query cost records."""
        return self.accumulator.costs

    # ------------------------------------------------------------------ #
    # headline metrics (Figure 6)
    # ------------------------------------------------------------------ #
    def summary(self) -> Dict[str, float]:
        """The paper's headline metrics for this run."""
        return _accumulator_summary(self.accumulator)

    # ------------------------------------------------------------------ #
    # windowed time series (Figure 11)
    # ------------------------------------------------------------------ #
    def _windows(self, window: int) -> List[List[QueryCost]]:
        costs = self.costs
        return [costs[start:start + window] for start in range(0, len(costs), window)]

    def windowed_false_miss_rate(self, window: int) -> List[float]:
        """fmr per window of ``window`` consecutive queries."""
        series = []
        for chunk in self._windows(window):
            cached = sum(c.cached_result_bytes for c in chunk)
            false = sum(c.false_miss_bytes for c in chunk)
            series.append(false / cached if cached else 0.0)
        return series

    def windowed_response_time(self, window: int) -> List[float]:
        """Mean response time per window."""
        series = []
        for chunk in self._windows(window):
            series.append(sum(c.response_time for c in chunk) / len(chunk) if chunk else 0.0)
        return series

    def windowed_index_fraction(self, window: int) -> List[float]:
        """Mean index/cache share (``i/c``) per window."""
        series = []
        snapshots = self.snapshots
        for start in range(0, len(snapshots), window):
            chunk = snapshots[start:start + window]
            if not chunk:
                series.append(0.0)
                continue
            series.append(sum(s.index_fraction for s in chunk) / len(chunk))
        return series

    def windowed_depth(self, window: int) -> List[float]:
        """Mean adaptive depth ``d`` per window."""
        series = []
        snapshots = self.snapshots
        for start in range(0, len(snapshots), window):
            chunk = snapshots[start:start + window]
            if not chunk:
                series.append(0.0)
                continue
            series.append(sum(s.depth for s in chunk) / len(chunk))
        return series


# --------------------------------------------------------------------------- #
# fleet-scale results
# --------------------------------------------------------------------------- #

#: Metrics that are pure functions of the seeded simulation (byte counts and
#: the rates derived from them).  CPU timings are measured wall clock, so
#: they are excluded; paired serial/parallel fleet runs agree exactly on
#: every metric listed here.
DETERMINISTIC_METRICS = ("uplink_bytes", "downlink_bytes", "cache_hit_rate",
                         "byte_hit_rate", "false_miss_rate", "response_time",
                         "server_contact_rate")


@dataclass
class ClientResult:
    """Everything measured for one fleet client."""

    client_id: int
    group: str
    model: str
    costs: List[QueryCost] = field(default_factory=list)
    arrival_times: List[float] = field(default_factory=list)
    final_cache_used_bytes: int = 0
    # Digest of the full final cache state (proactive sessions only; "" for
    # models without snapshot support).  Warm-restart tests compare these.
    final_cache_digest: str = ""

    def record(self, cost: QueryCost, arrival_time: float) -> None:
        """Record one query's cost and its simulated arrival instant."""
        self.costs.append(cost)
        self.arrival_times.append(arrival_time)

    def accumulator(self) -> CostAccumulator:
        """The client's costs wrapped for metric computation."""
        return CostAccumulator(costs=self.costs)

    def summary(self) -> Dict[str, float]:
        """The headline metrics of this client."""
        return _accumulator_summary(self.accumulator())


@dataclass(frozen=True)
class ServerLoad:
    """Aggregate load the whole fleet put on the shared server."""

    client_count: int
    total_queries: int
    server_queries: int
    duration_seconds: float
    uplink_bytes_total: float
    downlink_bytes_total: float
    server_cpu_seconds: float

    @property
    def queries_per_second(self) -> float:
        """Fleet-wide query arrival rate over the simulated duration."""
        if self.duration_seconds <= 0:
            return 0.0
        return self.total_queries / self.duration_seconds

    @property
    def server_queries_per_second(self) -> float:
        """Rate of queries that actually reached the server."""
        if self.duration_seconds <= 0:
            return 0.0
        return self.server_queries / self.duration_seconds

    @property
    def downlink_bytes_per_second(self) -> float:
        """Bytes per second the server pushed to the fleet."""
        if self.duration_seconds <= 0:
            return 0.0
        return self.downlink_bytes_total / self.duration_seconds

    def as_dict(self) -> Dict[str, float]:
        """All load figures as a flat mapping (for tables / JSON)."""
        return {
            "clients": float(self.client_count),
            "total_queries": float(self.total_queries),
            "server_queries": float(self.server_queries),
            "duration_seconds": self.duration_seconds,
            "queries_per_second": self.queries_per_second,
            "server_queries_per_second": self.server_queries_per_second,
            "uplink_bytes_total": self.uplink_bytes_total,
            "downlink_bytes_total": self.downlink_bytes_total,
            "downlink_bytes_per_second": self.downlink_bytes_per_second,
            "server_cpu_seconds": self.server_cpu_seconds,
        }


@dataclass
class FleetResult:
    """The outcome of one fleet simulation: per-client, per-group, server."""

    clients: List[ClientResult] = field(default_factory=list)
    # Dynamic fleets only: the shared server's applied-update counters and
    # the consistency mode (see repro.updates); None for static fleets.
    update_summary: Optional[Dict] = None
    # Sharded fleets only: the router's per-shard routing counters
    # (queries routed, shards pruned, pages read — see repro.sharding);
    # None for single-server fleets.
    shard_summary: Optional[Dict] = None
    # Loopback-networked fleets only: the transport plus the per-client
    # byte reconciliation between the client's WirelessChannel totals and
    # the server's connection ledgers (see repro.net.fleet); None for
    # in-process fleets.
    net_summary: Optional[Dict] = None

    def __post_init__(self) -> None:
        self.clients.sort(key=lambda client: client.client_id)

    # ------------------------------------------------------------------ #
    # per-client / per-group
    # ------------------------------------------------------------------ #
    def client_summaries(self) -> Dict[int, Dict[str, float]]:
        """Headline metrics per client id."""
        return {client.client_id: client.summary() for client in self.clients}

    def group_names(self) -> List[str]:
        """Group names in first-appearance order."""
        names: List[str] = []
        for client in self.clients:
            if client.group not in names:
                names.append(client.group)
        return names

    def group_clients(self, group: str) -> List[ClientResult]:
        """The clients of one group."""
        return [client for client in self.clients if client.group == group]

    def group_summary(self) -> Dict[str, Dict[str, float]]:
        """Pooled headline metrics per group (all group queries together)."""
        summaries: Dict[str, Dict[str, float]] = {}
        for group in self.group_names():
            members = self.group_clients(group)
            pooled = CostAccumulator(costs=[cost for client in members
                                            for cost in client.costs])
            summary = _accumulator_summary(pooled)
            summary["clients"] = float(len(members))
            summary["queries"] = float(len(pooled))
            summaries[group] = summary
        return summaries

    def deterministic_group_summary(self) -> Dict[str, Dict[str, float]]:
        """Per-group metrics restricted to the seed-deterministic ones.

        This is the signature compared by the serial-vs-parallel and
        repeated-run determinism tests.
        """
        return {group: {metric: summary[metric] for metric in DETERMINISTIC_METRICS}
                for group, summary in self.group_summary().items()}

    # ------------------------------------------------------------------ #
    # server load
    # ------------------------------------------------------------------ #
    def server_load(self) -> ServerLoad:
        """Aggregate the load every client put on the shared server."""
        costs = [cost for client in self.clients for cost in client.costs]
        arrivals = [t for client in self.clients for t in client.arrival_times]
        duration = max(arrivals) if arrivals else 0.0
        return ServerLoad(
            client_count=len(self.clients),
            total_queries=len(costs),
            server_queries=sum(1 for c in costs if c.contacted_server),
            duration_seconds=duration,
            uplink_bytes_total=sum(c.uplink_bytes for c in costs),
            downlink_bytes_total=sum(c.downlink_bytes for c in costs),
            server_cpu_seconds=sum(c.server_cpu_seconds for c in costs
                                   if c.contacted_server),
        )

    def shard_rows(self) -> List[Dict[str, float]]:
        """Per-shard routing counters as flat rows (sharded fleets only).

        One row per shard with the counters the router kept while the
        fleet ran: queries routed to the shard, router-level prunes
        (virtual-root scatters and kNN bound checks that skipped it
        without a visit — client-side pruning shows up as a low routed
        count instead), partition-result-cache skips (``--router-cache``
        proving the shard empty for the query's canonical variants), pages
        read there, and the shard's current object count.  Returns an
        empty list for single-server fleets.
        """
        summary = self.shard_summary
        if not summary:
            return []
        routed = summary.get("queries_routed") or []
        shard_count = len(routed)

        def column(key: str) -> List:
            # Summaries written before a counter existed (e.g. resumed
            # pre-PR-9 session snapshots have no "shards_skipped") default
            # to zeros instead of raising KeyError.
            values = summary.get(key)
            if isinstance(values, (list, tuple)) and len(values) == shard_count:
                return list(values)
            return [0] * shard_count

        objects = column("objects_per_shard")
        pruned = column("shards_pruned")
        skipped = column("shards_skipped")
        pages = column("pages_read")
        return [{
            "shard": float(index),
            "objects": float(objects[index]),
            "queries_routed": float(routed[index]),
            "shards_pruned": float(pruned[index]),
            "shards_skipped": float(skipped[index]),
            "pages_read": float(pages[index]),
        } for index in range(shard_count)]

    def windowed_queries_per_second(self, windows: int = 20) -> List[float]:
        """Fleet-wide arrival rate over ``windows`` equal slices of the run."""
        arrivals = sorted(t for client in self.clients for t in client.arrival_times)
        if not arrivals or windows <= 0:
            return []
        duration = arrivals[-1]
        if duration <= 0:
            return [float(len(arrivals))]
        width = duration / windows
        counts = [0] * windows
        for arrival in arrivals:
            slot = min(windows - 1, int(arrival / width))
            counts[slot] += 1
        return [count / width for count in counts]


def _accumulator_summary(acc: CostAccumulator) -> Dict[str, float]:
    """The shared headline-metric block of a cost accumulator."""
    return {
        "uplink_bytes": acc.mean_uplink_bytes(),
        "downlink_bytes": acc.mean_downlink_bytes(),
        "cache_hit_rate": acc.cache_hit_rate(),
        "byte_hit_rate": acc.byte_hit_rate(),
        "false_miss_rate": acc.false_miss_rate(),
        "response_time": acc.mean_response_time(),
        "client_cpu_ms": acc.mean_client_cpu_seconds() * 1000.0,
        "server_cpu_ms": acc.mean_server_cpu_seconds() * 1000.0,
        "server_contact_rate": acc.server_contact_rate(),
    }
