"""Parameter sweeps used by the figure-regenerating experiments."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.sim.config import SimulationConfig
from repro.sim.metrics import SimulationResult
from repro.sim.runner import build_environment, run_model, run_models


def cache_size_sweep(config: SimulationConfig, fractions: Sequence[float],
                     models: Iterable[str]) -> Dict[float, Dict[str, SimulationResult]]:
    """Run every model at several cache sizes (Figures 8 and 9).

    The dataset and trace are rebuilt once per cache size with the same seeds
    so every model within a cache size sees an identical workload.
    """
    results: Dict[float, Dict[str, SimulationResult]] = {}
    for fraction in fractions:
        sized = config.with_overrides(cache_fraction=fraction)
        environment = build_environment(sized)
        results[fraction] = run_models(environment, models)
    return results


def mobility_sweep(config: SimulationConfig, mobility_models: Sequence[str],
                   models: Iterable[str]) -> Dict[str, Dict[str, SimulationResult]]:
    """Run every caching model under several mobility models (Figure 7)."""
    results: Dict[str, Dict[str, SimulationResult]] = {}
    for mobility in mobility_models:
        moved = config.with_overrides(mobility_model=mobility)
        environment = build_environment(moved)
        results[mobility] = run_models(environment, models)
    return results


def replacement_sweep(config: SimulationConfig, policies: Sequence[str],
                      mobility_models: Sequence[str] = ("RAN", "DIR"),
                      model: str = "APRO") -> Dict[str, Dict[str, SimulationResult]]:
    """Run the proactive model under several replacement policies (Figure 10)."""
    results: Dict[str, Dict[str, SimulationResult]] = {}
    for mobility in mobility_models:
        moved = config.with_overrides(mobility_model=mobility)
        environment = build_environment(moved)
        per_policy: Dict[str, SimulationResult] = {}
        for policy in policies:
            per_policy[policy] = run_model(environment, model, replacement_policy=policy)
        results[mobility] = per_policy
    return results
