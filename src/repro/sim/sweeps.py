"""Parameter sweeps used by the figure-regenerating experiments.

Every sweep point rebuilds the environment from a deterministic
configuration, which makes the points embarrassingly parallel: pass
``max_workers`` > 1 to fan the points out over a
:class:`~concurrent.futures.ProcessPoolExecutor`.  Results are identical to
a serial sweep (only the measured CPU timings differ).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.sim.config import SimulationConfig
from repro.sim.metrics import SimulationResult
from repro.sim.runner import build_environment, map_maybe_parallel, run_model, run_models


def _sweep_point_worker(config: SimulationConfig, models: Sequence[str],
                        replacement_policies: Optional[Sequence[str]],
                        model: str) -> Dict[str, SimulationResult]:
    """Run one sweep point in a worker process.

    With ``replacement_policies`` set, runs ``model`` once per policy;
    otherwise runs every model in ``models`` once.
    """
    environment = build_environment(config)
    if replacement_policies is not None:
        return {policy: run_model(environment, model, replacement_policy=policy)
                for policy in replacement_policies}
    return run_models(environment, models)


def _run_points(configs: Sequence[SimulationConfig], models: Sequence[str],
                replacement_policies: Optional[Sequence[str]], model: str,
                max_workers: Optional[int]) -> List[Dict[str, SimulationResult]]:
    return map_maybe_parallel(
        _sweep_point_worker,
        [(config, models, replacement_policies, model) for config in configs],
        max_workers)


def cache_size_sweep(config: SimulationConfig, fractions: Sequence[float],
                     models: Iterable[str],
                     max_workers: Optional[int] = None) -> Dict[float, Dict[str, SimulationResult]]:
    """Run every model at several cache sizes (Figures 8 and 9).

    The dataset and trace are rebuilt once per cache size with the same seeds
    so every model within a cache size sees an identical workload.
    """
    models = list(models)
    configs = [config.with_overrides(cache_fraction=fraction) for fraction in fractions]
    points = _run_points(configs, models, None, "", max_workers)
    return dict(zip(fractions, points))


def mobility_sweep(config: SimulationConfig, mobility_models: Sequence[str],
                   models: Iterable[str],
                   max_workers: Optional[int] = None) -> Dict[str, Dict[str, SimulationResult]]:
    """Run every caching model under several mobility models (Figure 7)."""
    models = list(models)
    configs = [config.with_overrides(mobility_model=mobility)
               for mobility in mobility_models]
    points = _run_points(configs, models, None, "", max_workers)
    return dict(zip(mobility_models, points))


def replacement_sweep(config: SimulationConfig, policies: Sequence[str],
                      mobility_models: Sequence[str] = ("RAN", "DIR"),
                      model: str = "APRO",
                      max_workers: Optional[int] = None) -> Dict[str, Dict[str, SimulationResult]]:
    """Run the proactive model under several replacement policies (Figure 10)."""
    policies = list(policies)
    configs = [config.with_overrides(mobility_model=mobility)
               for mobility in mobility_models]
    points = _run_points(configs, (), policies, model, max_workers)
    return dict(zip(mobility_models, points))
