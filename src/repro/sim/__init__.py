"""End-to-end simulation of a mobile client issuing spatial queries.

The simulator reproduces the paper's experimental setup: a client moves
through the unit square under a mobility model, issues a Poisson stream of
mixed spatial queries about its neighbourhood, and answers them through one
of the caching models (PAG / SEM / proactive in its FPRO / CPRO / APRO
variants) over a 384 Kbps wireless channel.  Identical query traces are
replayed against every model so comparisons are paired.
"""

from repro.sim.config import SimulationConfig
from repro.sim.metrics import CacheSnapshot, SimulationResult
from repro.sim.sessions import (
    ClientSession,
    PageCachingSession,
    ProactiveSession,
    SemanticCachingSession,
    make_session,
)
from repro.sim.runner import SimulationEnvironment, build_environment, generate_trace, run_model, run_models

__all__ = [
    "SimulationConfig",
    "CacheSnapshot",
    "SimulationResult",
    "ClientSession",
    "ProactiveSession",
    "PageCachingSession",
    "SemanticCachingSession",
    "make_session",
    "SimulationEnvironment",
    "build_environment",
    "generate_trace",
    "run_model",
    "run_models",
]
