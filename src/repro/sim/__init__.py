"""End-to-end simulation of mobile clients issuing spatial queries.

The simulator reproduces the paper's experimental setup: a client moves
through the unit square under a mobility model, issues a Poisson stream of
mixed spatial queries about its neighbourhood, and answers them through one
of the caching models (PAG / SEM / proactive in its FPRO / CPRO / APRO
variants) over a 384 Kbps wireless channel.  Identical query traces are
replayed against every model so comparisons are paired.

Beyond the paper's single-client experiments, :mod:`repro.sim.fleet` scales
the same machinery to a whole fleet: many heterogeneous client groups
interleaved event-driven against one shared server, with per-group and
server-load aggregates.
"""

from repro.sim.config import SimulationConfig
from repro.sim.fleet import (
    ClientGroupSpec,
    FleetConfig,
    default_fleet,
    run_fleet,
)
from repro.sim.metrics import (
    CacheSnapshot,
    ClientResult,
    FleetResult,
    ServerLoad,
    SimulationResult,
)
from repro.sim.sessions import (
    ClientSession,
    GroundTruthCache,
    PageCachingSession,
    ProactiveSession,
    SemanticCachingSession,
    make_session,
)
from repro.sim.runner import (
    SharedServerState,
    SimulationEnvironment,
    build_environment,
    build_shared_state,
    generate_trace,
    run_model,
    run_models,
)

__all__ = [
    "SimulationConfig",
    "CacheSnapshot",
    "SimulationResult",
    "ClientResult",
    "FleetResult",
    "ServerLoad",
    "ClientSession",
    "GroundTruthCache",
    "ProactiveSession",
    "PageCachingSession",
    "SemanticCachingSession",
    "make_session",
    "SharedServerState",
    "SimulationEnvironment",
    "build_environment",
    "build_shared_state",
    "generate_trace",
    "run_model",
    "run_models",
    "ClientGroupSpec",
    "FleetConfig",
    "default_fleet",
    "run_fleet",
]
