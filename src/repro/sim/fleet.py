"""Fleet-scale simulation: many heterogeneous clients, one shared server.

The paper's experiments replay one client's trace at a time.  A production
deployment of proactive caching instead looks like PartitionCache-style
middleware: one server answering heavy traffic from a large population of
cache-holding clients.  This module grows the simulator in that direction:

* a **fleet** is a set of client *groups*; every group prescribes a mobility
  model, movement speed, think time, cache size, query mix and caching model
  for its members (:class:`ClientGroupSpec`);
* every client gets its own seeded trace, and all traces are interleaved
  **event-driven by arrival timestamp** against a single shared
  :class:`~repro.core.server.ServerQueryProcessor`;
* results come back per client, per group and as server-load aggregates
  (:class:`~repro.sim.metrics.FleetResult`).

Clients only share server-side state (the tree, the partition trees and the
memoised ground truth), all of which is read-only during a run, so a fleet
can be **sharded across worker processes**: every shard rebuilds the
deterministic server state and simulates its slice of the clients.  Serial
and parallel runs produce identical seed-deterministic metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.cost_model import QueryCost
from repro.obs import instrument as obs
from repro.obs.status import publish
from repro.sim.config import SimulationConfig
from repro.sim.metrics import ClientResult, FleetResult
from repro.sim.runner import (
    SharedServerState,
    build_shared_state,
    generate_trace,
    map_maybe_parallel,
)
from repro.sim.sessions import ClientSession, GroundTruthCache, make_session
from repro.workload.generator import QueryMix
from repro.workload.trace import TraceRecord


@dataclass(frozen=True)
class ClientGroupSpec:
    """One homogeneous slice of the fleet.

    Fields left at ``None`` inherit the fleet's base
    :class:`~repro.sim.config.SimulationConfig`.  ``speed_factor`` scales the
    base speed instead of replacing it so one fleet definition works at any
    base scale.
    """

    name: str
    clients: int
    model: str = "APRO"
    mobility_model: str = "RAN"
    speed_factor: float = 1.0
    think_time_mean: Optional[float] = None
    cache_fraction: Optional[float] = None
    query_mix: Optional[QueryMix] = None
    queries_per_client: Optional[int] = None
    replacement_policy: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("group name must be non-empty")
        if self.clients <= 0:
            raise ValueError("a group needs at least one client")
        if self.speed_factor <= 0:
            raise ValueError("speed_factor must be positive")


@dataclass(frozen=True)
class FleetConfig:
    """A whole fleet: the shared base configuration plus its client groups.

    The base configuration defines the dataset, the index and the channel —
    everything the one shared server is built from — while the groups define
    the client population.  ``fleet_seed`` decorrelates the per-client
    mobility / workload seeds between fleets that share a base config.

    The dynamic-dataset knobs make the fleet's object set churn:
    ``update_rate`` server-side mutations per simulated second (one shared
    mutation history every client observes), reconciled client-side by the
    ``consistency`` protocol (``versioned`` / ``ttl`` / ``none``, see
    :mod:`repro.updates.protocol`; ``ttl_seconds`` parameterises the TTL
    baseline and ``update_seed`` the update stream).  The defaults —
    ``update_rate=0, consistency="none"`` — are decision-identical to a
    static fleet, down to byte-identical cache digests.

    ``shards`` switches the fleet onto the sharded execution tier (see
    :mod:`repro.sharding`): the dataset is split by the named
    ``partitioner`` (``grid`` / ``kd``) and every query is planned by the
    scatter-gather router instead of one server.  ``None`` (the default)
    keeps the classic single-server path untouched; ``shards=1`` runs the
    sharded machinery degenerately and is byte-identical to it.

    ``router_cache`` attaches the router-level partition-result cache
    (:class:`~repro.sharding.result_cache.PartitionResultCache`) with a
    ``router_cache_bytes`` fact budget: repeated/overlapping queries skip
    shards the cache proves empty for their canonical variants.  Cache-on
    runs are result-identical to cache-off runs (same per-query result
    sets and ``result_bytes``); only wire-level accounting may differ.
    """

    base: SimulationConfig
    groups: Tuple[ClientGroupSpec, ...]
    fleet_seed: int = 101
    update_rate: float = 0.0
    consistency: str = "none"
    ttl_seconds: float = 120.0
    update_seed: int = 4242
    shards: Optional[int] = None
    partitioner: str = "grid"
    transport: str = "inproc"
    router_cache: bool = False
    router_cache_bytes: int = 65536

    def __post_init__(self) -> None:
        if not self.groups:
            raise ValueError("a fleet needs at least one client group")
        names = [group.name for group in self.groups]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate group names in {names}")
        if self.update_rate < 0:
            raise ValueError("update_rate must be non-negative")
        from repro.updates.stream import CONSISTENCY_MODES
        if self.consistency not in CONSISTENCY_MODES:
            raise ValueError(f"unknown consistency mode "
                             f"{self.consistency!r}; expected one of "
                             f"{', '.join(CONSISTENCY_MODES)}")
        if self.ttl_seconds <= 0:
            raise ValueError("ttl_seconds must be positive")
        if self.shards is not None and self.shards < 1:
            raise ValueError("shards must be at least 1")
        from repro.sharding.partitioner import PARTITIONER_METHODS
        if (self.partitioner or "grid").lower() not in PARTITIONER_METHODS:
            raise ValueError(f"unknown partitioner {self.partitioner!r}; "
                             f"expected one of "
                             f"{', '.join(PARTITIONER_METHODS)}")
        from repro.net.fleet import TRANSPORTS
        if self.transport not in TRANSPORTS:
            raise ValueError(f"unknown transport {self.transport!r}; "
                             f"expected one of {', '.join(TRANSPORTS)}")
        if self.router_cache and self.shards is None:
            raise ValueError("router_cache needs a sharded fleet "
                             "(set shards)")
        if self.router_cache_bytes <= 0:
            raise ValueError("router_cache_bytes must be positive")

    @property
    def is_dynamic(self) -> bool:
        """True when the run needs the dynamic-dataset machinery at all."""
        return self.update_rate > 0 or self.consistency != "none"

    @property
    def is_sharded(self) -> bool:
        """True when the fleet runs through the sharded execution tier."""
        return self.shards is not None

    @property
    def is_networked(self) -> bool:
        """True when the server sits behind a loopback socket."""
        return self.transport != "inproc"

    @staticmethod
    def make(base: SimulationConfig, groups: Sequence[ClientGroupSpec],
             fleet_seed: int = 101) -> "FleetConfig":
        """Build a fleet config from any sequence of group specs."""
        return FleetConfig(base=base, groups=tuple(groups), fleet_seed=fleet_seed)

    @property
    def total_clients(self) -> int:
        """Number of clients across all groups."""
        return sum(group.clients for group in self.groups)

    def client_specs(self) -> List["FleetClientSpec"]:
        """One spec per client, with globally unique, deterministic ids."""
        specs: List[FleetClientSpec] = []
        client_id = 0
        for group in self.groups:
            for _ in range(group.clients):
                specs.append(FleetClientSpec(
                    client_id=client_id,
                    group=group.name,
                    model=group.model,
                    config=self._client_config(group, client_id),
                    replacement_policy=group.replacement_policy))
                client_id += 1
        return specs

    def _client_config(self, group: ClientGroupSpec, client_id: int) -> SimulationConfig:
        """The per-client simulation config: group overrides + unique seeds.

        Dataset fields are never overridden — every client must see the same
        server-side tree.  The seed offsets use distinct large primes so the
        mobility and workload streams of different clients (and of the base
        single-client experiments) never collide.
        """
        overrides: Dict[str, object] = {
            "mobility_model": group.mobility_model,
            "speed": self.base.speed * group.speed_factor,
            "mobility_seed": self.base.mobility_seed + 7919 * (self.fleet_seed + client_id + 1),
            "workload_seed": self.base.workload_seed + 6007 * (self.fleet_seed + client_id + 1),
        }
        if group.think_time_mean is not None:
            overrides["think_time_mean"] = group.think_time_mean
        if group.cache_fraction is not None:
            overrides["cache_fraction"] = group.cache_fraction
        if group.query_mix is not None:
            overrides["query_mix"] = group.query_mix
        if group.queries_per_client is not None:
            overrides["query_count"] = group.queries_per_client
        return self.base.with_overrides(**overrides)


@dataclass(frozen=True)
class FleetClientSpec:
    """One concrete client of the fleet (flattened from its group)."""

    client_id: int
    group: str
    model: str
    config: SimulationConfig
    replacement_policy: Optional[str] = None


def default_fleet(clients: int, base: Optional[SimulationConfig] = None,
                  queries_per_client: Optional[int] = None,
                  fleet_seed: int = 101) -> FleetConfig:
    """A heterogeneous three-group city fleet for ``clients`` total clients.

    Pedestrians amble under random-waypoint mobility with the default cache;
    vehicles move fast and directed with a small cache and a range-heavy mix;
    hotspot users barely move, hold a large cache and ask mostly kNN queries.
    """
    if clients <= 0:
        raise ValueError("clients must be positive")
    base = base or SimulationConfig.scaled()
    if queries_per_client is not None:
        base = base.with_overrides(query_count=queries_per_client)
    shares = _split_clients(clients, (2, 1, 1))
    groups = []
    if shares[0]:
        groups.append(ClientGroupSpec(name="pedestrians", clients=shares[0],
                                      mobility_model="RAN"))
    if shares[1]:
        groups.append(ClientGroupSpec(name="vehicles", clients=shares[1],
                                      mobility_model="DIR", speed_factor=8.0,
                                      cache_fraction=base.cache_fraction / 2,
                                      query_mix=QueryMix(range_=2.0, knn=1.0, join=0.5)))
    if shares[2]:
        groups.append(ClientGroupSpec(name="hotspot", clients=shares[2],
                                      mobility_model="RAN", speed_factor=0.25,
                                      cache_fraction=base.cache_fraction * 2,
                                      query_mix=QueryMix(range_=0.5, knn=2.0, join=0.5)))
    return FleetConfig.make(base, groups, fleet_seed=fleet_seed)


def _split_clients(total: int, weights: Sequence[int]) -> List[int]:
    """Split ``total`` clients proportionally to integer ``weights``."""
    weight_sum = sum(weights)
    shares = [total * weight // weight_sum for weight in weights]
    leftover = total - sum(shares)
    for index in range(leftover):
        shares[index % len(shares)] += 1
    return shares


# --------------------------------------------------------------------------- #
# running a fleet
# --------------------------------------------------------------------------- #
def run_fleet(fleet: FleetConfig, max_workers: Optional[int] = None,
              store_path: Optional[str] = None,
              durable: bool = False) -> FleetResult:
    """Simulate the whole fleet against one shared server.

    With ``max_workers`` > 1 the clients are sharded round-robin over worker
    processes; every shard rebuilds the deterministic shared server state.
    Clients are mutually independent (they share only read-only server
    state), so sharding changes nothing about the results except wall-clock
    time; the seed-deterministic metrics are identical to a serial run.

    With ``store_path`` the shared server serves from a disk-backed
    ``.rpro`` page store instead of an in-memory tree (every shard opens
    its own read-only handle); all deterministic metrics are identical to
    the in-memory run.

    A *dynamic* fleet (``update_rate`` > 0 or a real consistency protocol)
    replays one shared mutation history against the live server between
    queries, so clients are no longer independent: such fleets run
    serially (``max_workers`` > 1 is rejected) via
    :func:`run_dynamic_fleet`, with a disk store opened copy-on-write —
    or, with ``durable=True``, through the store's write-ahead log, so
    every applied batch is crash-safe on disk (see
    :mod:`repro.storage.wal`).  ``durable`` requires a dynamic fleet and a
    disk store.

    A *sharded* fleet (``fleet.shards`` set) runs through
    :func:`run_sharded_fleet`: the shared router keeps per-shard routing
    statistics, so these fleets also run serially; ``store_path`` then
    names a shard-store *directory* (see ``repro persist save-shards``)
    and ``durable`` commits through one write-ahead log per shard.

    A *networked* fleet (``fleet.transport`` of ``uds`` or ``tcp``) puts
    the same server behind a loopback socket via
    :func:`repro.net.fleet.run_networked_fleet` — pinned byte-identical
    to the in-process run by the ``tests/net`` equivalence suite.
    """
    if durable and not fleet.is_dynamic:
        raise ValueError(
            "durable mode only applies to dynamic fleets (--update-rate / "
            "--consistency): a static fleet never writes, so there is "
            "nothing to log")
    if durable and store_path is None:
        raise ValueError("durable mode needs a disk store to log to "
                         "(pass store_path)")
    if fleet.is_networked:
        if max_workers is not None and max_workers > 1:
            raise ValueError(
                "a networked fleet serializes its clients through one "
                "loopback server; run it serially")
        if store_path is not None or durable:
            raise ValueError(
                "networked fleets build their server state in memory; "
                "disk stores and durable mode are inproc-only for now")
        from repro.net.fleet import run_networked_fleet
        return run_networked_fleet(fleet, fleet.transport)
    if fleet.is_sharded:
        if max_workers is not None and max_workers > 1:
            raise ValueError(
                "a sharded fleet routes every query through one shared "
                "router, so clients cannot be sharded over worker "
                "processes; run it serially")
        return run_sharded_fleet(fleet, store_dir=store_path, durable=durable)
    if fleet.is_dynamic:
        if max_workers is not None and max_workers > 1:
            raise ValueError(
                "a dynamic fleet shares one mutating server, so clients "
                "cannot be sharded over workers; run it serially")
        return run_dynamic_fleet(fleet, store_path=store_path,
                                 durable=durable)
    specs = fleet.client_specs()
    if max_workers is not None and max_workers > 1 and len(specs) > 1:
        shard_count = min(max_workers, len(specs))
        shards = [specs[offset::shard_count] for offset in range(shard_count)]
        shard_results = map_maybe_parallel(
            _run_fleet_shard,
            [(fleet.base, shard, store_path) for shard in shards], max_workers)
        return FleetResult(clients=[client for shard in shard_results
                                    for client in shard])
    shared = build_shared_state(fleet.base, store_path=store_path)
    try:
        return FleetResult(clients=_run_clients(shared, specs))
    finally:
        shared.tree.store.close()


def _run_fleet_shard(base: SimulationConfig, specs: List[FleetClientSpec],
                     store_path: Optional[str] = None) -> List[ClientResult]:
    """Process-pool task: rebuild the shared state and run one client shard."""
    shared = build_shared_state(base, store_path=store_path)
    try:
        return _run_clients(shared, specs)
    finally:
        shared.tree.store.close()


def make_fleet_sessions(shared: SharedServerState,
                        specs: Sequence[FleetClientSpec]) -> Dict[int, ClientSession]:
    """One freshly built (cold-cache) session per client spec."""
    return {spec.client_id: make_session(
        spec.model, shared.tree, spec.config, server=shared.server,
        replacement_policy=spec.replacement_policy,
        ground_truth=shared.ground_truth) for spec in specs}


def build_fleet_events(specs: Sequence[FleetClientSpec],
                       ) -> List[Tuple[float, int, TraceRecord]]:
    """The fleet's deterministic global event list.

    Every client's seeded trace, merged and sorted by simulated arrival
    time (ties broken by client id, then issue order).  The list depends
    only on the specs, so a resumed session rebuilds the identical list
    and continues from any event offset (see :mod:`repro.sim.restart`).
    """
    events: List[Tuple[float, int, TraceRecord]] = []
    for spec in specs:
        trace = generate_trace(spec.config)
        events.extend((record.arrival_time, spec.client_id, record)
                      for record in trace)
    events.sort(key=lambda event: (event[0], event[1], event[2].index))
    return events


def replay_fleet_events(sessions: Dict[int, ClientSession],
                        results: Dict[int, ClientResult],
                        events: Sequence[Tuple[float, int, TraceRecord]]) -> None:
    """Process ``events`` in order, recording each cost on its client."""
    for arrival_time, client_id, record in events:
        if obs.ENABLED:
            cost = _process_traced(sessions[client_id], client_id, record)
        else:
            cost = sessions[client_id].process(record)
        results[client_id].record(cost, arrival_time)


def _process_traced(session: ClientSession, client_id: int,
                    record: TraceRecord) -> "QueryCost":
    """Run one query under an open ``query`` span, annotated with its cost."""
    instrument = obs.active()
    with instrument.span("query", client=client_id, seq=record.index,
                         kind=record.query.query_type.value):
        cost = session.process(record)
        instrument.annotate(
            pages=cost.server_page_reads,
            uplink_bytes=cost.uplink_bytes,
            downlink_bytes=cost.downlink_bytes,
            contacted_server=cost.contacted_server)
    instrument.count("repro_queries_total", 1.0, kind=cost.query_type)
    instrument.count("repro_query_pages_total", float(cost.server_page_reads))
    return cost


def replay_dynamic_events(updater, sessions: Dict[int, ClientSession],
                          results: Dict[int, "ClientResult"],
                          events: Sequence[Tuple]) -> None:
    """Process a merged query + update event list in arrival order.

    The one replay loop shared by the single-server and sharded dynamic
    fleets: update events apply through ``updater`` (a
    :class:`~repro.updates.applier.DatasetUpdater` or
    :class:`~repro.sharding.updater.ShardedUpdater`), query events run
    through their client's session and record on its result.
    """
    for kind, arrival_time, client_id, payload in events:
        if kind == "update":
            if obs.ENABLED:
                with obs.active().span("update",
                                       kind=getattr(payload, "kind", "?"),
                                       seq=getattr(payload, "index", -1)):
                    updater.apply(payload)
                obs.active().count("repro_updates_total", 1.0)
            else:
                updater.apply(payload)
        else:
            if obs.ENABLED:
                cost = _process_traced(sessions[client_id], client_id,
                                       payload)
            else:
                cost = sessions[client_id].process(payload)
            results[client_id].record(cost, arrival_time)


def finalize_fleet_results(sessions: Dict[int, ClientSession],
                           results: Dict[int, ClientResult]) -> None:
    """Stamp final cache usage (and content digest, where supported)."""
    for client_id, session in sessions.items():
        snapshot = session.cache_snapshot(len(results[client_id].costs))
        results[client_id].final_cache_used_bytes = snapshot.used_bytes
        cache = getattr(session, "cache", None)
        if hasattr(cache, "content_digest"):
            results[client_id].final_cache_digest = cache.content_digest()


def cache_churn(sessions: Dict[int, ClientSession]) -> Dict[str, int]:
    """Replacement-policy churn totals over every session's live cache.

    Read by the status board mid-run; models without a proactive cache
    (PAG, SEM) simply contribute zeros.
    """
    totals = {"evictions": 0, "rejected_inserts": 0,
              "invalidations": 0, "refreshes": 0}
    for client_id in sorted(sessions):
        cache = getattr(sessions[client_id], "cache", None)
        for key in totals:
            totals[key] += int(getattr(cache, key, 0) or 0)
    return totals


def _wal_facts(store: object) -> Dict[str, object]:
    """Live write-ahead-log facts of a (possibly non-durable) store."""
    wal = getattr(store, "wal", None)
    if wal is None:
        return {"durable": False}
    return {"durable": True,
            "records_written": int(getattr(wal, "records_written", 0)),
            "bytes_written": int(getattr(wal, "bytes_written", 0))}


def _run_clients(shared: SharedServerState,
                 specs: Sequence[FleetClientSpec]) -> List[ClientResult]:
    """Replay every client's trace, interleaved by arrival timestamp."""
    sessions = make_fleet_sessions(shared, specs)
    results = {spec.client_id: ClientResult(client_id=spec.client_id,
                                            group=spec.group, model=spec.model)
               for spec in specs}
    events = build_fleet_events(specs)
    publish("fleet", lambda: {"clients": len(specs), "events": len(events)})
    publish("cache", lambda: cache_churn(sessions))
    replay_fleet_events(sessions, results, events)
    finalize_fleet_results(sessions, results)
    return [results[spec.client_id] for spec in specs]


# --------------------------------------------------------------------------- #
# dynamic fleets: one shared mutation history
# --------------------------------------------------------------------------- #
_PROACTIVE_MODELS = ("APRO", "FPRO", "CPRO")


def build_dynamic_events(fleet: FleetConfig,
                         specs: Sequence[FleetClientSpec]) -> List[Tuple]:
    """The merged, arrival-ordered query + update event list of a fleet.

    Query events keep exactly the relative order of
    :func:`build_fleet_events`; update events from the fleet's seeded
    stream (see :mod:`repro.updates.stream`) slot in by arrival time, an
    update winning ties so a mutation at time *t* is visible to every
    query at time *t*.  Each element is ``("query", t, client_id, record)``
    or ``("update", t, None, event)``.
    """
    from repro.updates.stream import UpdateStreamConfig, generate_update_stream
    query_events = build_fleet_events(specs)
    merged: List[Tuple] = [("query", t, client_id, record)
                           for t, client_id, record in query_events]
    if fleet.update_rate > 0 and query_events:
        horizon = query_events[-1][0]
        stream_config = UpdateStreamConfig(
            update_rate=fleet.update_rate,
            mean_object_bytes=fleet.base.mean_object_bytes,
            zipf_theta=fleet.base.zipf_theta,
            seed=fleet.update_seed)
        initial_ids = _initial_object_ids(fleet.base)
        updates = generate_update_stream(initial_ids, horizon, stream_config)
        merged.extend(("update", event.arrival_time, None, event)
                      for event in updates)
        merged.sort(key=lambda item: (
            item[1],                                     # arrival time
            0 if item[0] == "update" else 1,             # updates first
            item[2] if item[2] is not None else -1,      # client id
            item[3].index))                              # issue order
    return merged


def _initial_object_ids(base: SimulationConfig) -> List[int]:
    """The deterministic time-zero object id population of the base config.

    The dataset generators assign consecutive ids starting at 0, so the
    population is known without building the tree — asserted against the
    real tree by the fleet tests.
    """
    return list(range(base.object_count))


def make_dynamic_sessions(fleet: FleetConfig, shared: SharedServerState,
                          specs: Sequence[FleetClientSpec],
                          updater) -> Dict[int, ClientSession]:
    """One cold-cache session per spec, wired to the fleet's consistency.

    The one session factory shared by :func:`run_dynamic_fleet` and the
    dynamic halt/resume paths of :mod:`repro.sim.restart` — both must
    build byte-identical session wiring (same protocol instances bound to
    the same updater) for a resumed run to reproduce an uninterrupted one.
    """
    from repro.updates import make_protocol
    return {spec.client_id: make_session(
        spec.model, shared.tree, spec.config, server=shared.server,
        replacement_policy=spec.replacement_policy,
        ground_truth=shared.ground_truth,
        consistency=make_protocol(fleet.consistency, updater=updater,
                                  size_model=shared.size_model,
                                  ttl_seconds=fleet.ttl_seconds))
        for spec in specs}


def check_dynamic_models(fleet: FleetConfig, kind: str = "dynamic") -> None:
    """Reject fleet groups whose model cannot join a mutating fleet."""
    for group in fleet.groups:
        if group.model.upper() not in _PROACTIVE_MODELS:
            raise ValueError(
                f"group {group.name!r} runs {group.model}, which cannot "
                f"join a {kind} fleet; supported models: "
                f"{', '.join(_PROACTIVE_MODELS)}")


def run_dynamic_fleet(fleet: FleetConfig,
                      store_path: Optional[str] = None,
                      durable: bool = False) -> FleetResult:
    """Run a fleet whose shared server mutates mid-run.

    All clients observe one mutation history: update events apply to the
    single live tree (a disk store is opened through its copy-on-write
    overlay; ``durable=True`` additionally commits every batch to the
    store's write-ahead log) strictly interleaved with the query events,
    and every proactive session reconciles its cache through the fleet's
    consistency protocol.  Only proactive models participate — PAG and SEM
    have no consistency story and are rejected up front.
    """
    from repro.updates import DatasetUpdater
    check_dynamic_models(fleet)
    specs = fleet.client_specs()
    shared = build_shared_state(fleet.base, store_path=store_path,
                                store_writable=fleet.update_rate > 0,
                                store_durable=durable)
    try:
        updater = DatasetUpdater(shared.tree, shared.server,
                                 ground_truth=shared.ground_truth)
        sessions = make_dynamic_sessions(fleet, shared, specs, updater)
        results = {spec.client_id: ClientResult(client_id=spec.client_id,
                                                group=spec.group,
                                                model=spec.model)
                   for spec in specs}
        events = build_dynamic_events(fleet, specs)
        publish("fleet", lambda: {"clients": len(specs),
                                  "events": len(events),
                                  "consistency": fleet.consistency})
        publish("cache", lambda: cache_churn(sessions))
        publish("updates", lambda: dict(updater.summary()))
        publish("wal", lambda: _wal_facts(shared.tree.store))
        replay_dynamic_events(updater, sessions, results, events)
        finalize_fleet_results(sessions, results)
    finally:
        shared.tree.store.close()
    result = FleetResult(clients=[results[spec.client_id] for spec in specs])
    result.update_summary = dict(updater.summary())
    result.update_summary["consistency"] = fleet.consistency
    return result


# --------------------------------------------------------------------------- #
# sharded fleets: the scatter-gather execution tier
# --------------------------------------------------------------------------- #
def run_sharded_fleet(fleet: FleetConfig,
                      store_dir: Optional[str] = None,
                      durable: bool = False) -> FleetResult:
    """Run a fleet against a sharded deployment (see :mod:`repro.sharding`).

    The same arrival-ordered event list as the single-server run replays
    against the shard router: every session talks to the router exactly as
    it would to one :class:`~repro.core.server.ServerQueryProcessor`, and a
    dynamic fleet's update stream routes each mutation to its owning shard.
    With one shard the run is byte-identical to the single-server fleet
    (same results, per-query costs and cache digests); with N shards it is
    result-identical, with per-shard page reads rolled up into each
    query's cost and surfaced in :attr:`FleetResult.shard_summary`.

    Only the proactive models participate: PAG and SEM answer from the
    ground-truth oracle rather than the server protocol, so routing them
    through shards would be a no-op with misleading metrics.

    ``store_dir`` serves every shard from its own ``.rpro`` file in that
    directory (copy-on-write when the fleet mutates the dataset;
    ``durable=True`` commits every shard's update batches to that shard's
    write-ahead log).
    """
    from repro.sharding import (
        PartitionResultCache,
        ShardedUpdater,
        build_sharded_state,
    )
    from repro.updates import make_protocol
    shard_count = fleet.shards if fleet.shards is not None else 1
    check_dynamic_models(fleet, kind="sharded")
    specs = fleet.client_specs()
    state = build_sharded_state(fleet.base, shard_count,
                                partitioner=fleet.partitioner,
                                store_dir=store_dir,
                                writable=fleet.update_rate > 0,
                                durable=durable)
    router = state.router
    if fleet.router_cache:
        router.attach_result_cache(
            PartitionResultCache(capacity_bytes=fleet.router_cache_bytes))
    updater = None
    try:
        ground_truth = GroundTruthCache(state.view)
        consistency_factory = lambda: None  # noqa: E731 - tiny local factory
        if fleet.is_dynamic:
            updater = ShardedUpdater(router, ground_truth=ground_truth)
            consistency_factory = lambda: make_protocol(  # noqa: E731
                fleet.consistency, updater=updater,
                size_model=state.size_model, ttl_seconds=fleet.ttl_seconds)
        sessions = {spec.client_id: make_session(
            spec.model, state.view, spec.config, server=router,
            replacement_policy=spec.replacement_policy,
            ground_truth=ground_truth,
            consistency=consistency_factory()) for spec in specs}
        results = {spec.client_id: ClientResult(client_id=spec.client_id,
                                                group=spec.group,
                                                model=spec.model)
                   for spec in specs}
        publish("fleet", lambda: {"clients": len(specs),
                                  "shards": shard_count,
                                  "partitioner": fleet.partitioner})
        publish("cache", lambda: cache_churn(sessions))
        publish("shards", lambda: state.shard_summary(fleet.partitioner))
        if fleet.is_dynamic:
            publish("updates", lambda: dict(updater.summary()))
            replay_dynamic_events(updater, sessions, results,
                                  build_dynamic_events(fleet, specs))
        else:
            replay_fleet_events(sessions, results, build_fleet_events(specs))
        finalize_fleet_results(sessions, results)
        shard_summary = state.shard_summary(fleet.partitioner)
    finally:
        state.close()
    result = FleetResult(clients=[results[spec.client_id] for spec in specs])
    result.shard_summary = shard_summary
    if updater is not None:
        result.update_summary = dict(updater.summary())
        result.update_summary["consistency"] = fleet.consistency
    return result
