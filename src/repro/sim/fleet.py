"""Fleet-scale simulation: many heterogeneous clients, one shared server.

The paper's experiments replay one client's trace at a time.  A production
deployment of proactive caching instead looks like PartitionCache-style
middleware: one server answering heavy traffic from a large population of
cache-holding clients.  This module grows the simulator in that direction:

* a **fleet** is a set of client *groups*; every group prescribes a mobility
  model, movement speed, think time, cache size, query mix and caching model
  for its members (:class:`ClientGroupSpec`);
* every client gets its own seeded trace, and all traces are interleaved
  **event-driven by arrival timestamp** against a single shared
  :class:`~repro.core.server.ServerQueryProcessor`;
* results come back per client, per group and as server-load aggregates
  (:class:`~repro.sim.metrics.FleetResult`).

Clients only share server-side state (the tree, the partition trees and the
memoised ground truth), all of which is read-only during a run, so a fleet
can be **sharded across worker processes**: every shard rebuilds the
deterministic server state and simulates its slice of the clients.  Serial
and parallel runs produce identical seed-deterministic metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.sim.config import SimulationConfig
from repro.sim.metrics import ClientResult, FleetResult
from repro.sim.runner import (
    SharedServerState,
    build_shared_state,
    generate_trace,
    map_maybe_parallel,
)
from repro.sim.sessions import ClientSession, make_session
from repro.workload.generator import QueryMix
from repro.workload.trace import TraceRecord


@dataclass(frozen=True)
class ClientGroupSpec:
    """One homogeneous slice of the fleet.

    Fields left at ``None`` inherit the fleet's base
    :class:`~repro.sim.config.SimulationConfig`.  ``speed_factor`` scales the
    base speed instead of replacing it so one fleet definition works at any
    base scale.
    """

    name: str
    clients: int
    model: str = "APRO"
    mobility_model: str = "RAN"
    speed_factor: float = 1.0
    think_time_mean: Optional[float] = None
    cache_fraction: Optional[float] = None
    query_mix: Optional[QueryMix] = None
    queries_per_client: Optional[int] = None
    replacement_policy: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("group name must be non-empty")
        if self.clients <= 0:
            raise ValueError("a group needs at least one client")
        if self.speed_factor <= 0:
            raise ValueError("speed_factor must be positive")


@dataclass(frozen=True)
class FleetConfig:
    """A whole fleet: the shared base configuration plus its client groups.

    The base configuration defines the dataset, the index and the channel —
    everything the one shared server is built from — while the groups define
    the client population.  ``fleet_seed`` decorrelates the per-client
    mobility / workload seeds between fleets that share a base config.
    """

    base: SimulationConfig
    groups: Tuple[ClientGroupSpec, ...]
    fleet_seed: int = 101

    def __post_init__(self) -> None:
        if not self.groups:
            raise ValueError("a fleet needs at least one client group")
        names = [group.name for group in self.groups]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate group names in {names}")

    @staticmethod
    def make(base: SimulationConfig, groups: Sequence[ClientGroupSpec],
             fleet_seed: int = 101) -> "FleetConfig":
        """Build a fleet config from any sequence of group specs."""
        return FleetConfig(base=base, groups=tuple(groups), fleet_seed=fleet_seed)

    @property
    def total_clients(self) -> int:
        """Number of clients across all groups."""
        return sum(group.clients for group in self.groups)

    def client_specs(self) -> List["FleetClientSpec"]:
        """One spec per client, with globally unique, deterministic ids."""
        specs: List[FleetClientSpec] = []
        client_id = 0
        for group in self.groups:
            for _ in range(group.clients):
                specs.append(FleetClientSpec(
                    client_id=client_id,
                    group=group.name,
                    model=group.model,
                    config=self._client_config(group, client_id),
                    replacement_policy=group.replacement_policy))
                client_id += 1
        return specs

    def _client_config(self, group: ClientGroupSpec, client_id: int) -> SimulationConfig:
        """The per-client simulation config: group overrides + unique seeds.

        Dataset fields are never overridden — every client must see the same
        server-side tree.  The seed offsets use distinct large primes so the
        mobility and workload streams of different clients (and of the base
        single-client experiments) never collide.
        """
        overrides: Dict[str, object] = {
            "mobility_model": group.mobility_model,
            "speed": self.base.speed * group.speed_factor,
            "mobility_seed": self.base.mobility_seed + 7919 * (self.fleet_seed + client_id + 1),
            "workload_seed": self.base.workload_seed + 6007 * (self.fleet_seed + client_id + 1),
        }
        if group.think_time_mean is not None:
            overrides["think_time_mean"] = group.think_time_mean
        if group.cache_fraction is not None:
            overrides["cache_fraction"] = group.cache_fraction
        if group.query_mix is not None:
            overrides["query_mix"] = group.query_mix
        if group.queries_per_client is not None:
            overrides["query_count"] = group.queries_per_client
        return self.base.with_overrides(**overrides)


@dataclass(frozen=True)
class FleetClientSpec:
    """One concrete client of the fleet (flattened from its group)."""

    client_id: int
    group: str
    model: str
    config: SimulationConfig
    replacement_policy: Optional[str] = None


def default_fleet(clients: int, base: Optional[SimulationConfig] = None,
                  queries_per_client: Optional[int] = None,
                  fleet_seed: int = 101) -> FleetConfig:
    """A heterogeneous three-group city fleet for ``clients`` total clients.

    Pedestrians amble under random-waypoint mobility with the default cache;
    vehicles move fast and directed with a small cache and a range-heavy mix;
    hotspot users barely move, hold a large cache and ask mostly kNN queries.
    """
    if clients <= 0:
        raise ValueError("clients must be positive")
    base = base or SimulationConfig.scaled()
    if queries_per_client is not None:
        base = base.with_overrides(query_count=queries_per_client)
    shares = _split_clients(clients, (2, 1, 1))
    groups = []
    if shares[0]:
        groups.append(ClientGroupSpec(name="pedestrians", clients=shares[0],
                                      mobility_model="RAN"))
    if shares[1]:
        groups.append(ClientGroupSpec(name="vehicles", clients=shares[1],
                                      mobility_model="DIR", speed_factor=8.0,
                                      cache_fraction=base.cache_fraction / 2,
                                      query_mix=QueryMix(range_=2.0, knn=1.0, join=0.5)))
    if shares[2]:
        groups.append(ClientGroupSpec(name="hotspot", clients=shares[2],
                                      mobility_model="RAN", speed_factor=0.25,
                                      cache_fraction=base.cache_fraction * 2,
                                      query_mix=QueryMix(range_=0.5, knn=2.0, join=0.5)))
    return FleetConfig.make(base, groups, fleet_seed=fleet_seed)


def _split_clients(total: int, weights: Sequence[int]) -> List[int]:
    """Split ``total`` clients proportionally to integer ``weights``."""
    weight_sum = sum(weights)
    shares = [total * weight // weight_sum for weight in weights]
    leftover = total - sum(shares)
    for index in range(leftover):
        shares[index % len(shares)] += 1
    return shares


# --------------------------------------------------------------------------- #
# running a fleet
# --------------------------------------------------------------------------- #
def run_fleet(fleet: FleetConfig, max_workers: Optional[int] = None,
              store_path: Optional[str] = None) -> FleetResult:
    """Simulate the whole fleet against one shared server.

    With ``max_workers`` > 1 the clients are sharded round-robin over worker
    processes; every shard rebuilds the deterministic shared server state.
    Clients are mutually independent (they share only read-only server
    state), so sharding changes nothing about the results except wall-clock
    time; the seed-deterministic metrics are identical to a serial run.

    With ``store_path`` the shared server serves from a disk-backed
    ``.rpro`` page store instead of an in-memory tree (every shard opens
    its own read-only handle); all deterministic metrics are identical to
    the in-memory run.
    """
    specs = fleet.client_specs()
    if max_workers is not None and max_workers > 1 and len(specs) > 1:
        shard_count = min(max_workers, len(specs))
        shards = [specs[offset::shard_count] for offset in range(shard_count)]
        shard_results = map_maybe_parallel(
            _run_fleet_shard,
            [(fleet.base, shard, store_path) for shard in shards], max_workers)
        return FleetResult(clients=[client for shard in shard_results
                                    for client in shard])
    shared = build_shared_state(fleet.base, store_path=store_path)
    try:
        return FleetResult(clients=_run_clients(shared, specs))
    finally:
        shared.tree.store.close()


def _run_fleet_shard(base: SimulationConfig, specs: List[FleetClientSpec],
                     store_path: Optional[str] = None) -> List[ClientResult]:
    """Process-pool task: rebuild the shared state and run one client shard."""
    shared = build_shared_state(base, store_path=store_path)
    try:
        return _run_clients(shared, specs)
    finally:
        shared.tree.store.close()


def make_fleet_sessions(shared: SharedServerState,
                        specs: Sequence[FleetClientSpec]) -> Dict[int, ClientSession]:
    """One freshly built (cold-cache) session per client spec."""
    return {spec.client_id: make_session(
        spec.model, shared.tree, spec.config, server=shared.server,
        replacement_policy=spec.replacement_policy,
        ground_truth=shared.ground_truth) for spec in specs}


def build_fleet_events(specs: Sequence[FleetClientSpec],
                       ) -> List[Tuple[float, int, TraceRecord]]:
    """The fleet's deterministic global event list.

    Every client's seeded trace, merged and sorted by simulated arrival
    time (ties broken by client id, then issue order).  The list depends
    only on the specs, so a resumed session rebuilds the identical list
    and continues from any event offset (see :mod:`repro.sim.restart`).
    """
    events: List[Tuple[float, int, TraceRecord]] = []
    for spec in specs:
        trace = generate_trace(spec.config)
        events.extend((record.arrival_time, spec.client_id, record)
                      for record in trace)
    events.sort(key=lambda event: (event[0], event[1], event[2].index))
    return events


def replay_fleet_events(sessions: Dict[int, ClientSession],
                        results: Dict[int, ClientResult],
                        events: Sequence[Tuple[float, int, TraceRecord]]) -> None:
    """Process ``events`` in order, recording each cost on its client."""
    for arrival_time, client_id, record in events:
        cost = sessions[client_id].process(record)
        results[client_id].record(cost, arrival_time)


def finalize_fleet_results(sessions: Dict[int, ClientSession],
                           results: Dict[int, ClientResult]) -> None:
    """Stamp final cache usage (and content digest, where supported)."""
    for client_id, session in sessions.items():
        snapshot = session.cache_snapshot(len(results[client_id].costs))
        results[client_id].final_cache_used_bytes = snapshot.used_bytes
        cache = getattr(session, "cache", None)
        if hasattr(cache, "content_digest"):
            results[client_id].final_cache_digest = cache.content_digest()


def _run_clients(shared: SharedServerState,
                 specs: Sequence[FleetClientSpec]) -> List[ClientResult]:
    """Replay every client's trace, interleaved by arrival timestamp."""
    sessions = make_fleet_sessions(shared, specs)
    results = {spec.client_id: ClientResult(client_id=spec.client_id,
                                            group=spec.group, model=spec.model)
               for spec in specs}
    replay_fleet_events(sessions, results, build_fleet_events(specs))
    finalize_fleet_results(sessions, results)
    return [results[spec.client_id] for spec in specs]
