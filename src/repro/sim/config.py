"""Simulation configuration (Table 6.1) and its laptop-scale variants."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional

from repro.workload.generator import QueryMix


@dataclass(frozen=True)
class SimulationConfig:
    """All knobs of one simulation run.

    The defaults of :meth:`paper` follow Table 6.1 of the paper; the
    :meth:`scaled` variants keep the same relationships between movement,
    query extent and cache size but shrink the dataset and query count so a
    pure-Python run finishes in seconds.  See DESIGN.md for the scaling
    rationale.
    """

    # Dataset.
    dataset_name: str = "NE"
    object_count: int = 4_000
    mean_object_bytes: int = 10_240
    zipf_theta: float = 0.8
    dataset_seed: int = 7

    # Index.
    page_bytes: int = 1_024

    # Mobility / arrival.
    mobility_model: str = "RAN"
    speed: float = 0.0002
    think_time_mean: float = 50.0
    mobility_seed: int = 13

    # Workload.
    query_count: int = 400
    window_area: float = 2e-3
    k_max: int = 5
    join_distance: float = 0.01
    join_window_area: Optional[float] = None
    query_mix: QueryMix = field(default_factory=QueryMix)
    workload_seed: int = 29

    # Cache.
    cache_fraction: float = 0.01
    explicit_cache_bytes: Optional[int] = None
    replacement_policy: str = "GRD3"

    # Proactive caching / adaptation.
    index_form: str = "adaptive"
    initial_depth: int = 1
    sensitivity: float = 0.2
    adapt_report_period: int = 25

    # Channel.
    bandwidth_bps: float = 384_000.0
    fixed_rtt_seconds: float = 0.0

    # ------------------------------------------------------------------ #
    # factories
    # ------------------------------------------------------------------ #
    @staticmethod
    def paper() -> "SimulationConfig":
        """The paper's Table 6.1 settings (full scale; hours of CPU in pure Python)."""
        return SimulationConfig(
            dataset_name="NE",
            object_count=123_593,
            page_bytes=4_096,
            speed=0.0001,
            think_time_mean=50.0,
            query_count=10_000,
            window_area=1e-6,
            k_max=5,
            join_distance=5e-5,
            cache_fraction=0.01,
            sensitivity=0.2,
            bandwidth_bps=384_000.0,
        )

    @staticmethod
    def scaled(query_count: int = 400, object_count: int = 4_000,
               seed: int = 7) -> "SimulationConfig":
        """Laptop-scale defaults used by the benchmarks and examples."""
        return SimulationConfig(query_count=query_count, object_count=object_count,
                                dataset_seed=seed)

    @staticmethod
    def tiny(query_count: int = 60, object_count: int = 600,
             seed: int = 7) -> "SimulationConfig":
        """Very small configuration for fast unit / integration tests."""
        return SimulationConfig(query_count=query_count, object_count=object_count,
                                dataset_seed=seed, adapt_report_period=10)

    # ------------------------------------------------------------------ #
    # derived values
    # ------------------------------------------------------------------ #
    def dataset_bytes(self) -> int:
        """Approximate total dataset size in bytes."""
        return self.object_count * self.mean_object_bytes

    def cache_bytes(self) -> int:
        """The cache budget ``|C|`` in bytes."""
        if self.explicit_cache_bytes is not None:
            return self.explicit_cache_bytes
        return max(1, int(self.dataset_bytes() * self.cache_fraction))

    def effective_join_window_area(self) -> float:
        """The join neighbourhood window area (defaults to 4x the range window)."""
        if self.join_window_area is not None:
            return self.join_window_area
        return 4.0 * self.window_area

    def with_overrides(self, **overrides) -> "SimulationConfig":
        """A copy with some fields replaced (convenience for sweeps)."""
        return replace(self, **overrides)

    def as_table(self) -> Dict[str, str]:
        """A printable parameter table mirroring Table 6.1."""
        return {
            "dataset": f"{self.dataset_name} ({self.object_count} objects)",
            "spd": f"{self.speed}",
            "think time": f"{self.think_time_mean}s",
            "Area_wnd": f"{self.window_area}",
            "Dist_join": f"{self.join_distance}",
            "K_max": f"{self.k_max}",
            "bandwidth": f"{self.bandwidth_bps / 1000:.0f}Kbps",
            "|C|": f"{self.cache_fraction:.1%} ({self.cache_bytes()} bytes)",
            "|o|": f"{self.mean_object_bytes} bytes",
            "theta": f"{self.zipf_theta}",
            "s": f"{self.sensitivity:.0%}",
            "queries": f"{self.query_count}",
            "page size": f"{self.page_bytes} bytes",
            "mobility": self.mobility_model,
            "replacement": self.replacement_policy,
        }
