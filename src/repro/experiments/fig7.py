"""Figure 7 — performance under the RAN and DIR mobility models.

7(a): response time of PAG / SEM / APRO under both mobility models.
7(b): false miss rate of SEM and APRO under both mobility models.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.experiments.report import format_table
from repro.sim.config import SimulationConfig
from repro.sim.sweeps import mobility_sweep


def run(config: Optional[SimulationConfig] = None,
        models: Sequence[str] = ("PAG", "SEM", "APRO"),
        mobility_models: Sequence[str] = ("RAN", "DIR")) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Return ``{mobility: {model: summary}}``."""
    config = config or SimulationConfig.scaled()
    sweep = mobility_sweep(config, mobility_models, models)
    return {mobility: {model: result.summary() for model, result in per_model.items()}
            for mobility, per_model in sweep.items()}


def render(results: Dict[str, Dict[str, Dict[str, float]]]) -> str:
    """Render the 7(a) response-time and 7(b) false-miss-rate tables."""
    mobilities = list(results)
    models = list(next(iter(results.values())))
    response_rows = [[model] + [results[mob][model]["response_time"] for mob in mobilities]
                     for model in models]
    fmr_rows = [[model] + [results[mob][model]["false_miss_rate"] for mob in mobilities]
                for model in models if model in ("SEM", "APRO")]
    part_a = format_table(["model"] + [f"{m} resp (s)" for m in mobilities], response_rows,
                          title="Figure 7(a) — response time under mobility models")
    part_b = format_table(["model"] + [f"{m} fmr" for m in mobilities], fmr_rows,
                          title="Figure 7(b) — false miss rate under mobility models")
    return part_a + "\n\n" + part_b


def main() -> None:  # pragma: no cover - CLI convenience
    """Regenerate and print this experiment at the default scale."""
    print(render(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
