"""Experiments that regenerate every table and figure of the paper.

Each module corresponds to one figure (or table) of Section 6 and exposes a
``run(config)`` function returning a structured result plus a ``render``
helper that prints the same rows / series the paper reports.  The benchmark
harness under ``benchmarks/`` simply calls these functions, so the figures
can also be regenerated directly::

    python -m repro.experiments.fig6
"""

from repro.experiments import fig6, fig7, fig8, fig9, fig10, fig11, overheads, table61
from repro.experiments.report import format_table, normalise

__all__ = ["fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "overheads", "table61",
           "format_table", "normalise"]
