"""Small helpers for printing experiment results as text tables."""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence


def normalise(values: Mapping[str, float]) -> Dict[str, float]:
    """Normalise a metric across models to [0, 1] (as Figure 6 does)."""
    maximum = max(values.values()) if values else 0.0
    if maximum <= 0:
        return {key: 0.0 for key in values}
    return {key: value / maximum for key, value in values.items()}


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: str = "") -> str:
    """Render a fixed-width text table."""
    rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


#: The per-group headline metrics every fleet report shows, in order.
FLEET_METRICS = ("clients", "queries", "uplink_bytes", "downlink_bytes",
                 "cache_hit_rate", "byte_hit_rate", "response_time",
                 "server_contact_rate")


def format_fleet_report(result, title: str = "Fleet simulation") -> str:
    """Render a fleet run: per-group metric table plus the server-load block.

    ``result`` is a :class:`~repro.sim.metrics.FleetResult` (duck-typed here
    to keep this module dependency-free).
    """
    groups = result.group_summary()
    rows = [[metric] + [groups[name][metric] for name in groups]
            for metric in FLEET_METRICS]
    blocks = [
        format_table(["metric"] + list(groups), rows, title=title),
        "",
        format_kv("Server load", result.server_load().as_dict()),
    ]
    shard_rows = result.shard_rows()
    if shard_rows:
        columns = ("shard", "objects", "queries_routed", "shards_pruned",
                   "shards_skipped", "pages_read")
        blocks.extend([
            "",
            format_table(list(columns),
                         [[int(row[column]) for column in columns]
                          for row in shard_rows],
                         title="Shard routing"),
        ])
        summary = result.shard_summary
        if summary.get("router_cache"):
            blocks.extend([
                "",
                format_kv("Router result cache", {
                    "cache_hits": summary.get("cache_hits", 0),
                    "cache_misses": summary.get("cache_misses", 0),
                    "cache_probes": summary.get("cache_probes", 0),
                    "shards_skipped": summary.get("total_skipped", 0),
                }),
            ])
    return "\n".join(blocks)


def format_latency_line(latency: Mapping[str, object]) -> str:
    """One-line wire-latency digest for networked fleet reports.

    ``latency`` is a :func:`repro.net.fleet.latency_summary` dict.  The
    percentiles are real socket round-trip times, so the line carries an
    explicit wall-clock marker: unlike every other number in a fleet
    report they are not reproducible across runs.
    """
    return (f"Wire latency over {latency['queries']} queries: "
            f"p50 {latency['p50_ms']} ms, p99 {latency['p99_ms']} ms, "
            f"mean {latency['mean_ms']} ms (wall-clock, non-deterministic)")


def format_kv(title: str, values: Mapping[str, object]) -> str:
    """Render a key-value block (used for server-load / parameter reports)."""
    lines: List[str] = []
    if title:
        lines.append(title)
    width = max((len(key) for key in values), default=0)
    for key, value in values.items():
        lines.append(f"  {key.ljust(width)}  {_fmt(value)}")
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if abs(cell) >= 1000:
            return f"{cell:,.0f}"
        if abs(cell) >= 1:
            return f"{cell:.3f}"
        return f"{cell:.4f}"
    return str(cell)
