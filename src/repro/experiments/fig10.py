"""Figure 10 — APRO response time under different cache replacement schemes.

The paper compares LRU, FAR and GRD3 (and mentions MRU as uniformly worst)
under both mobility models.  The reproduced claims: GRD3 is the most stable
across RAN and DIR; LRU does comparatively better under DIR, FAR and GRD3
better under RAN; MRU is the worst everywhere.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.experiments.report import format_table
from repro.sim.config import SimulationConfig
from repro.sim.sweeps import replacement_sweep


DEFAULT_POLICIES = ("LRU", "FAR", "GRD3")


def run(config: Optional[SimulationConfig] = None,
        policies: Sequence[str] = DEFAULT_POLICIES,
        mobility_models: Sequence[str] = ("RAN", "DIR"),
        include_mru: bool = False) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Return ``{mobility: {policy: summary}}`` for the APRO model."""
    config = config or SimulationConfig.scaled()
    wanted = list(policies) + (["MRU"] if include_mru and "MRU" not in policies else [])
    sweep = replacement_sweep(config, wanted, mobility_models, model="APRO")
    return {mobility: {policy: result.summary() for policy, result in per_policy.items()}
            for mobility, per_policy in sweep.items()}


def render(results: Dict[str, Dict[str, Dict[str, float]]]) -> str:
    """Render APRO response time per replacement policy and mobility model."""
    mobilities = list(results)
    policies = list(next(iter(results.values())))
    rows = [[policy] + [results[mob][policy]["response_time"] for mob in mobilities]
            for policy in policies]
    headers = ["policy"] + [f"{m} resp (s)" for m in mobilities]
    return format_table(headers, rows,
                        title="Figure 10 — APRO response time under replacement schemes")


def main() -> None:  # pragma: no cover - CLI convenience
    """Regenerate and print this experiment at the default scale."""
    print(render(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
