"""Table 6.1 — the simulation parameter settings.

The table is configuration, not measurement, but regenerating it from the
actual :class:`~repro.sim.config.SimulationConfig` keeps the documentation
honest about the scaled defaults used in this reproduction versus the paper's
original values.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.experiments.report import format_table
from repro.sim.config import SimulationConfig


def run(config: Optional[SimulationConfig] = None) -> Dict[str, Dict[str, str]]:
    """Return the parameter tables of the paper configuration and this run's."""
    config = config or SimulationConfig.scaled()
    return {
        "paper": SimulationConfig.paper().as_table(),
        "this run": config.as_table(),
    }


def render(tables: Dict[str, Dict[str, str]]) -> str:
    """Render both parameter tables side by side."""
    paper = tables["paper"]
    current = tables["this run"]
    keys = sorted(set(paper) | set(current))
    rows = [(key, paper.get(key, "-"), current.get(key, "-")) for key in keys]
    return format_table(["parameter", "paper (Table 6.1)", "this run"], rows,
                        title="Table 6.1 — system parameter settings")


def main() -> None:  # pragma: no cover - CLI convenience
    """Regenerate and print this experiment at the default scale."""
    print(render(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
