"""Section 6.4 text numbers — partition-tree overheads and server CPU time.

The paper reports, as prose rather than a figure: the binary partition trees
add 4.2 MB / 23.7 MB on top of the 3.8 MB / 18.5 MB NE / RD indexes (i.e.
roughly doubling the index footprint but never more than 2x), and the
server-side query processing time *drops* slightly under the adaptive scheme
(0.0081 s for FPRO vs 0.0067 s for APRO) because only a small part of each
partition tree is visited.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.experiments.report import format_table
from repro.rtree.partition_tree import build_partition_trees
from repro.sim.config import SimulationConfig
from repro.sim.runner import build_environment, run_models


def run(config: Optional[SimulationConfig] = None) -> Dict[str, float]:
    """Measure index size, partition-tree size and FPRO vs APRO server CPU."""
    config = config or SimulationConfig.scaled(query_count=150)
    environment = build_environment(config)
    tree = environment.tree
    size_model = tree.size_model
    partition_trees = build_partition_trees(tree.all_nodes())
    index_bytes = tree.index_bytes()
    partition_bytes = sum(pt.size_bytes(size_model.entry_bytes, size_model.pointer_bytes)
                          for pt in partition_trees.values())
    results = run_models(environment, ("FPRO", "APRO"))
    return {
        "index_bytes": float(index_bytes),
        "partition_tree_bytes": float(partition_bytes),
        "partition_to_index_ratio": partition_bytes / index_bytes if index_bytes else 0.0,
        "server_cpu_ms_fpro": results["FPRO"].summary()["server_cpu_ms"],
        "server_cpu_ms_apro": results["APRO"].summary()["server_cpu_ms"],
    }


def render(values: Dict[str, float]) -> str:
    """Render the overhead numbers next to the paper's claims."""
    rows = [
        ("R-tree index size (bytes)", values["index_bytes"], "3.8 MB (NE) / 18.5 MB (RD)"),
        ("partition trees size (bytes)", values["partition_tree_bytes"],
         "4.2 MB (NE) / 23.7 MB (RD)"),
        ("partition / index ratio", values["partition_to_index_ratio"], "~1.1x, bounded by 2x"),
        ("server CPU per query, FPRO (ms)", values["server_cpu_ms_fpro"], "8.1 ms"),
        ("server CPU per query, APRO (ms)", values["server_cpu_ms_apro"], "6.7 ms"),
    ]
    return format_table(["quantity", "this run", "paper"], rows,
                        title="Section 6.4 — adaptive-scheme overheads")


def main() -> None:  # pragma: no cover - CLI convenience
    """Regenerate and print this experiment at the default scale."""
    print(render(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
