"""Figure 8 — response time under different cache sizes (0.1%–5%, RAN)."""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.experiments.report import format_table
from repro.sim.config import SimulationConfig
from repro.sim.sweeps import cache_size_sweep


DEFAULT_FRACTIONS = (0.001, 0.005, 0.01, 0.05)


def run(config: Optional[SimulationConfig] = None,
        fractions: Sequence[float] = DEFAULT_FRACTIONS,
        models: Sequence[str] = ("PAG", "SEM", "APRO")) -> Dict[float, Dict[str, Dict[str, float]]]:
    """Return ``{cache_fraction: {model: summary}}`` under RAN mobility."""
    config = (config or SimulationConfig.scaled()).with_overrides(mobility_model="RAN")
    sweep = cache_size_sweep(config, fractions, models)
    return {fraction: {model: result.summary() for model, result in per_model.items()}
            for fraction, per_model in sweep.items()}


def render(results: Dict[float, Dict[str, Dict[str, float]]]) -> str:
    """Render response time per model as the cache size grows."""
    fractions = sorted(results)
    models = list(next(iter(results.values())))
    rows = [[model] + [results[f][model]["response_time"] for f in fractions]
            for model in models]
    headers = ["model"] + [f"|C|={f:.1%}" for f in fractions]
    return format_table(headers, rows,
                        title="Figure 8 — response time (s) vs cache size (RAN)")


def main() -> None:  # pragma: no cover - CLI convenience
    """Regenerate and print this experiment at the default scale."""
    print(render(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
