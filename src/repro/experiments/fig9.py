"""Figure 9 — client CPU time per query under different cache sizes.

The CPU time is the measured client-side processing time (query execution
over the cache plus cache maintenance), excluding simulated network delays —
the same subtraction the paper performs.  Absolute milliseconds depend on the
host machine; the reproduced claims are the *relative* ones: APRO costs more
CPU than PAG/SEM but is far less sensitive to the cache size, and all CPU
times stay orders of magnitude below the wireless communication delay.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.experiments.report import format_table
from repro.sim.config import SimulationConfig
from repro.sim.sweeps import cache_size_sweep


DEFAULT_FRACTIONS = (0.001, 0.005, 0.01, 0.05)


def run(config: Optional[SimulationConfig] = None,
        fractions: Sequence[float] = DEFAULT_FRACTIONS,
        models: Sequence[str] = ("PAG", "SEM", "APRO")) -> Dict[float, Dict[str, Dict[str, float]]]:
    """Return ``{cache_fraction: {model: summary}}`` (same sweep as Figure 8)."""
    config = (config or SimulationConfig.scaled()).with_overrides(mobility_model="RAN")
    sweep = cache_size_sweep(config, fractions, models)
    return {fraction: {model: result.summary() for model, result in per_model.items()}
            for fraction, per_model in sweep.items()}


def render(results: Dict[float, Dict[str, Dict[str, float]]]) -> str:
    """Render client CPU milliseconds per query per model and cache size."""
    fractions = sorted(results)
    models = list(next(iter(results.values())))
    rows = [[model] + [results[f][model]["client_cpu_ms"] for f in fractions]
            for model in models]
    headers = ["model"] + [f"|C|={f:.1%}" for f in fractions]
    return format_table(headers, rows,
                        title="Figure 9 — client CPU time (ms) vs cache size (RAN)")


def main() -> None:  # pragma: no cover - CLI convenience
    """Regenerate and print this experiment at the default scale."""
    print(render(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
