"""Figure 6 — overall performance comparison of PAG, SEM and APRO.

The paper runs the mixed workload under the DIR mobility model with
``|C| = 1%`` of the NE dataset and reports, per caching model: uplink bytes,
downlink bytes, cache hit rate, byte hit rate and response time (each
normalised to the maximum across models in the figure).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.experiments.report import format_table, normalise
from repro.sim.config import SimulationConfig
from repro.sim.runner import run_comparison


METRICS = ("uplink_bytes", "downlink_bytes", "cache_hit_rate", "byte_hit_rate",
           "response_time")


def default_config() -> SimulationConfig:
    """The Figure 6 configuration: DIR mobility, 1% cache, mixed workload."""
    return SimulationConfig.scaled().with_overrides(mobility_model="DIR",
                                                    cache_fraction=0.01)


def run(config: Optional[SimulationConfig] = None,
        models: Sequence[str] = ("PAG", "SEM", "APRO")) -> Dict[str, Dict[str, float]]:
    """Run the comparison and return ``{model: {metric: value}}``."""
    config = config or default_config()
    results = run_comparison(config, models=models)
    return {model: result.summary() for model, result in results.items()}


def render(summaries: Dict[str, Dict[str, float]]) -> str:
    """Print absolute and normalised values for the five Figure 6 metrics."""
    models = list(summaries)
    blocks = []
    rows = []
    for metric in METRICS:
        values = {model: summaries[model][metric] for model in models}
        scaled = normalise(values)
        rows.append([metric] + [f"{values[m]:.4g} ({scaled[m]:.2f})" for m in models])
    blocks.append(format_table(["metric (value, normalised)"] + models, rows,
                               title="Figure 6 — overall performance comparison"))
    return "\n".join(blocks)


def main() -> None:  # pragma: no cover - CLI convenience
    """Regenerate and print this experiment at the default scale."""
    print(render(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
