"""Figure 11 — adaptive vs non-adaptive proactive caching under a k-ramp.

The workload is kNN-only; the average ``k`` ramps from 10 down to 1 over the
first half of the run and back up to 10 over the second half.  The cache is
small (0.1 %) and the mobility model is RAN.  For FPRO (full form), CPRO
(normal compact form) and APRO (adaptive ``d+``-level form) the experiment
reports three time series sampled every ``window`` queries:

* 11(a) false miss rate,
* 11(b) the index share of the cache (``i/c``),
* 11(c) response time.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.report import format_table
from repro.sim.config import SimulationConfig
from repro.sim.runner import build_environment, run_models
from repro.workload.generator import QueryMix
from repro.workload.schedule import KnnRampSchedule


def default_config(query_count: int = 400) -> SimulationConfig:
    """The Figure 11 configuration: kNN-only workload, small cache, RAN mobility.

    The paper uses ``|C| = 0.1%`` of its 1.2 GB dataset, i.e. a cache holding
    roughly a dozen queries' worth of results.  The scaled dataset is ~300x
    smaller, so the same *ratio* of cache size to per-query result size is
    obtained with a 2% fraction; using the raw 0.1% would leave room for less
    than one query's results and the experiment would only measure eviction
    thrash (see DESIGN.md, "Modelling decisions").
    """
    return SimulationConfig.scaled(query_count=query_count).with_overrides(
        mobility_model="RAN",
        cache_fraction=0.02,
        query_mix=QueryMix(range_=0.0, knn=1.0, join=0.0),
        k_max=10,
        adapt_report_period=20,
    )


def run(config: Optional[SimulationConfig] = None,
        models: Sequence[str] = ("FPRO", "CPRO", "APRO"),
        window: int = 25) -> Dict[str, Dict[str, List[float]]]:
    """Return ``{model: {series_name: values}}`` for the three time series."""
    config = config or default_config()
    schedule = KnnRampSchedule(total_queries=config.query_count)
    environment = build_environment(config, knn_schedule=schedule)
    results = run_models(environment, models)
    series: Dict[str, Dict[str, List[float]]] = {}
    for model, result in results.items():
        series[model] = {
            "false_miss_rate": result.windowed_false_miss_rate(window),
            "index_fraction": result.windowed_index_fraction(window),
            "response_time": result.windowed_response_time(window),
            "depth": result.windowed_depth(window),
        }
    series["_k_schedule"] = {
        "k": [float(schedule.k_at(i)) for i in range(0, config.query_count, window)],
    }
    return series


def render(series: Dict[str, Dict[str, List[float]]]) -> str:
    """Render the three time-series tables."""
    models = [name for name in series if not name.startswith("_")]
    k_values = series.get("_k_schedule", {}).get("k", [])
    blocks = []
    for panel, label in (("false_miss_rate", "Figure 11(a) — false miss rate"),
                         ("index_fraction", "Figure 11(b) — index share of cache (i/c)"),
                         ("response_time", "Figure 11(c) — response time (s)")):
        length = max(len(series[m][panel]) for m in models)
        rows = []
        for index in range(length):
            row = [index, k_values[index] if index < len(k_values) else ""]
            for model in models:
                values = series[model][panel]
                row.append(values[index] if index < len(values) else "")
            rows.append(row)
        blocks.append(format_table(["window", "avg k"] + models, rows, title=label))
    return "\n\n".join(blocks)


def main() -> None:  # pragma: no cover - CLI convenience
    """Regenerate and print this experiment at the default scale."""
    print(render(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
