"""The perf-harness scenario suite.

Every scenario is a plain function ``run(scale) -> fingerprint`` where the
fingerprint is a flat ``{name: float}`` dict of seed-deterministic metrics.
The harness times the call and stores the fingerprint next to the timing, so
a perf report doubles as an equivalence certificate: an optimisation that
changes any eviction decision or query result shows up as a fingerprint
mismatch against the baseline, not just a timing delta.

Scales
------
``default``
    The committed-baseline scale: big enough that the hot paths dominate
    (thousands of queries through the replacement and search kernels).
``smoke``
    The CI scale: the same scenarios shrunk to run in a few seconds.

Only deterministic metrics (byte counts, hit rates, modelled response time)
go into fingerprints — wall-clock-derived values like measured CPU seconds
are excluded by construction.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.sim.config import SimulationConfig
from repro.sim.fleet import default_fleet, run_fleet
from repro.sim.metrics import DETERMINISTIC_METRICS
from repro.sim.runner import run_comparison


Fingerprint = Dict[str, float]

#: Scenario scale knobs: (queries, objects, fleet_clients, fleet_queries).
SCALES: Dict[str, Dict[str, int]] = {
    "default": {"queries": 250, "objects": 4_000,
                "fleet_clients": 24, "fleet_queries": 40,
                "pressure_queries": 150, "pressure_objects": 3_000},
    "smoke": {"queries": 60, "objects": 1_200,
              "fleet_clients": 6, "fleet_queries": 12,
              "pressure_queries": 40, "pressure_objects": 800},
}

_FINGERPRINT_METRICS = ("uplink_bytes", "downlink_bytes", "cache_hit_rate",
                        "byte_hit_rate", "false_miss_rate", "response_time")


def _round(value: float) -> float:
    """Round to a stable precision so JSON round-trips compare exactly."""
    return round(float(value), 9)


def fig6_models(scale: Dict[str, int]) -> Fingerprint:
    """Figure-6-style comparison: PAG vs SEM vs APRO on one DIR trace."""
    config = SimulationConfig.scaled(
        query_count=scale["queries"], object_count=scale["objects"],
    ).with_overrides(mobility_model="DIR", cache_fraction=0.01)
    results = run_comparison(config, models=("PAG", "SEM", "APRO"))
    fingerprint: Fingerprint = {}
    for model, result in results.items():
        summary = result.summary()
        for metric in _FINGERPRINT_METRICS:
            fingerprint[f"{model}.{metric}"] = _round(summary[metric])
    return fingerprint


def fleet_rush_hour(scale: Dict[str, int]) -> Fingerprint:
    """The default heterogeneous fleet against one shared server."""
    base = SimulationConfig.scaled(
        query_count=scale["fleet_queries"], object_count=scale["objects"])
    fleet = default_fleet(scale["fleet_clients"], base=base)
    result = run_fleet(fleet)
    fingerprint: Fingerprint = {}
    for group, summary in sorted(result.deterministic_group_summary().items()):
        for metric in DETERMINISTIC_METRICS:
            fingerprint[f"{group}.{metric}"] = _round(summary[metric])
    load = result.server_load()
    fingerprint["server.total_queries"] = float(load.total_queries)
    fingerprint["server.server_queries"] = float(load.server_queries)
    fingerprint["server.uplink_bytes_total"] = _round(load.uplink_bytes_total)
    fingerprint["server.downlink_bytes_total"] = _round(load.downlink_bytes_total)
    return fingerprint


def cache_pressure(scale: Dict[str, int]) -> Fingerprint:
    """APRO under shrinking cache budgets — an eviction-heavy workload.

    Small caches force the replacement policy to run on nearly every insert,
    which is exactly the ``make_room`` hot path this scenario protects.
    """
    fractions: Tuple[float, ...] = (0.002, 0.005, 0.01, 0.02)
    fingerprint: Fingerprint = {}
    for fraction in fractions:
        config = SimulationConfig.scaled(
            query_count=scale["pressure_queries"],
            object_count=scale["pressure_objects"],
        ).with_overrides(cache_fraction=fraction)
        results = run_comparison(config, models=("APRO",))
        summary = results["APRO"].summary()
        for metric in _FINGERPRINT_METRICS:
            fingerprint[f"c{fraction}.{metric}"] = _round(summary[metric])
    return fingerprint


SCENARIOS: Dict[str, Callable[[Dict[str, int]], Fingerprint]] = {
    "fig6_models": fig6_models,
    "fleet_rush_hour": fleet_rush_hour,
    "cache_pressure": cache_pressure,
}


def scenario_names() -> List[str]:
    """All registered scenario names, in registry order."""
    return list(SCENARIOS)
