"""The perf-harness scenario suite.

Every scenario is a plain function ``run(scale) -> fingerprint`` where the
fingerprint is a flat ``{name: float}`` dict of seed-deterministic metrics.
The harness times the call and stores the fingerprint next to the timing, so
a perf report doubles as an equivalence certificate: an optimisation that
changes any eviction decision or query result shows up as a fingerprint
mismatch against the baseline, not just a timing delta.

Scales
------
``default``
    The committed-baseline scale: big enough that the hot paths dominate
    (thousands of queries through the replacement and search kernels).
``smoke``
    The CI scale: the same scenarios shrunk to run in a few seconds.

Only deterministic metrics (byte counts, hit rates, modelled response time)
go into fingerprints — wall-clock-derived values like measured CPU seconds
are excluded by construction.  The one deliberate exception is
``net_fleet``, whose per-rung ``p50_ms`` / ``p99_ms`` entries measure real
socket round trips: it reports a connections-vs-latency table and is
therefore never gated against a baseline (its deterministic
``results_match`` bit still certifies correctness).
"""

from __future__ import annotations

import os
import tempfile
from typing import Callable, Dict, List, Tuple

from repro.sim.config import SimulationConfig
from repro.sim.fleet import default_fleet, run_fleet
from repro.sim.metrics import DETERMINISTIC_METRICS
from repro.sim.runner import run_comparison


Fingerprint = Dict[str, float]

#: Scenario scale knobs: (queries, objects, fleet_clients, fleet_queries).
SCALES: Dict[str, Dict[str, int]] = {
    "default": {"queries": 250, "objects": 4_000,
                "fleet_clients": 24, "fleet_queries": 40,
                "pressure_queries": 150, "pressure_objects": 3_000,
                "storage_queries": 120, "storage_objects": 3_000,
                "restart_clients": 8, "restart_queries": 20,
                "churn_clients": 8, "churn_queries": 25,
                "churn_objects": 2_000, "churn_rate_milli": 50},
    "smoke": {"queries": 60, "objects": 1_200,
              "fleet_clients": 6, "fleet_queries": 12,
              "pressure_queries": 40, "pressure_objects": 800,
              "storage_queries": 40, "storage_objects": 900,
              "restart_clients": 4, "restart_queries": 10,
              "churn_clients": 4, "churn_queries": 10,
              "churn_objects": 600, "churn_rate_milli": 40},
}
SCALES["default"].update({"shard_clients": 10, "shard_queries": 25,
                          "shard_objects": 3_000, "shard_count": 4})
SCALES["smoke"].update({"shard_clients": 4, "shard_queries": 10,
                        "shard_objects": 900, "shard_count": 3})
SCALES["default"].update({"durable_clients": 8, "durable_queries": 20,
                          "durable_objects": 2_000,
                          "durable_rate_milli": 300})
SCALES["smoke"].update({"durable_clients": 4, "durable_queries": 8,
                        "durable_objects": 600, "durable_rate_milli": 250})
SCALES["default"].update({"net_connections": 8, "net_queries": 10,
                          "net_objects": 2_000})
SCALES["smoke"].update({"net_connections": 4, "net_queries": 6,
                        "net_objects": 600})
SCALES["default"].update({"hotspot_queries": 300, "hotspot_objects": 4_000,
                          "hotspot_shards": 6, "hotspot_sites": 12,
                          "hotspot_grid": 48})
SCALES["smoke"].update({"hotspot_queries": 80, "hotspot_objects": 1_000,
                        "hotspot_shards": 4, "hotspot_sites": 8,
                        "hotspot_grid": 48})
SCALES["default"].update({"obs_clients": 12, "obs_queries": 20,
                          "obs_objects": 2_000, "obs_pairs": 3})
SCALES["smoke"].update({"obs_clients": 6, "obs_queries": 12,
                        "obs_objects": 800, "obs_pairs": 3})

_FINGERPRINT_METRICS = ("uplink_bytes", "downlink_bytes", "cache_hit_rate",
                        "byte_hit_rate", "false_miss_rate", "response_time")


def _round(value: float) -> float:
    """Round to a stable precision so JSON round-trips compare exactly."""
    return round(float(value), 9)


def fig6_models(scale: Dict[str, int]) -> Fingerprint:
    """Figure-6-style comparison: PAG vs SEM vs APRO on one DIR trace."""
    config = SimulationConfig.scaled(
        query_count=scale["queries"], object_count=scale["objects"],
    ).with_overrides(mobility_model="DIR", cache_fraction=0.01)
    results = run_comparison(config, models=("PAG", "SEM", "APRO"))
    fingerprint: Fingerprint = {}
    for model, result in results.items():
        summary = result.summary()
        for metric in _FINGERPRINT_METRICS:
            fingerprint[f"{model}.{metric}"] = _round(summary[metric])
    return fingerprint


def fleet_rush_hour(scale: Dict[str, int]) -> Fingerprint:
    """The default heterogeneous fleet against one shared server."""
    base = SimulationConfig.scaled(
        query_count=scale["fleet_queries"], object_count=scale["objects"])
    fleet = default_fleet(scale["fleet_clients"], base=base)
    result = run_fleet(fleet)
    fingerprint: Fingerprint = {}
    for group, summary in sorted(result.deterministic_group_summary().items()):
        for metric in DETERMINISTIC_METRICS:
            fingerprint[f"{group}.{metric}"] = _round(summary[metric])
    load = result.server_load()
    fingerprint["server.total_queries"] = float(load.total_queries)
    fingerprint["server.server_queries"] = float(load.server_queries)
    fingerprint["server.uplink_bytes_total"] = _round(load.uplink_bytes_total)
    fingerprint["server.downlink_bytes_total"] = _round(load.downlink_bytes_total)
    return fingerprint


def cache_pressure(scale: Dict[str, int]) -> Fingerprint:
    """APRO under shrinking cache budgets — an eviction-heavy workload.

    Small caches force the replacement policy to run on nearly every insert,
    which is exactly the ``make_room`` hot path this scenario protects.
    """
    fractions: Tuple[float, ...] = (0.002, 0.005, 0.01, 0.02)
    fingerprint: Fingerprint = {}
    for fraction in fractions:
        config = SimulationConfig.scaled(
            query_count=scale["pressure_queries"],
            object_count=scale["pressure_objects"],
        ).with_overrides(cache_fraction=fraction)
        results = run_comparison(config, models=("APRO",))
        summary = results["APRO"].summary()
        for metric in _FINGERPRINT_METRICS:
            fingerprint[f"c{fraction}.{metric}"] = _round(summary[metric])
    return fingerprint


def storage_paged(scale: Dict[str, int]) -> Fingerprint:
    """APRO served from the disk-backed page store vs the in-memory tree.

    Checkpoints the server tree into an ``.rpro`` file, replays one APRO
    trace against both backends and fingerprints the deterministic metrics
    of the file-backed run, the logical page-read total (backend-invariant
    by construction), the physical file-read count (deterministic: fixed
    LRU buffer + deterministic access sequence) and an explicit
    ``backend_match`` bit asserting the two runs agreed query for query.
    """
    from repro.sim.runner import build_tree, generate_trace, replay_store_trace
    from repro.storage import save_tree

    config = SimulationConfig.scaled(
        query_count=scale["storage_queries"],
        object_count=scale["storage_objects"]).with_overrides(cache_fraction=0.01)
    trace = generate_trace(config)

    with tempfile.TemporaryDirectory() as tmp:
        store_path = os.path.join(tmp, "server.rpro")
        tree = build_tree(config)
        save_tree(tree, store_path)
        # The in-memory replay reuses the tree just checkpointed (it is
        # deterministic from config) instead of rebuilding it; the file
        # replay uses a deliberately small 16-page buffer so the LRU is
        # exercised and real query-time file reads appear even at smoke
        # scale, where the whole index fits the default buffer.
        memory_run, memory_reads, _ = replay_store_trace(config, trace, tree=tree)
        file_run, file_reads, io_stats = replay_store_trace(
            config, trace, store_path=store_path, store_buffer_pages=16)

    fingerprint: Fingerprint = {
        "backend_match": 1.0 if (memory_run == file_run
                                 and memory_reads == file_reads) else 0.0,
        "logical_page_reads": float(file_reads),
        "file_reads": float(io_stats["file_reads"]),
        "buffer_hits": float(io_stats["buffer_hits"]),
    }
    for metric, value in zip(("uplink_bytes", "downlink_bytes", "response_time"),
                             (sum(q[1] for q in file_run),
                              sum(q[2] for q in file_run),
                              sum(q[3] for q in file_run))):
        fingerprint[f"total.{metric}"] = _round(value)
    return fingerprint


def warm_restart(scale: Dict[str, int]) -> Fingerprint:
    """A fleet killed mid-run and resumed from cache snapshots.

    Runs the default fleet twice — uninterrupted, and halted halfway then
    resumed via :mod:`repro.sim.restart` — and fingerprints the resumed
    run's deterministic group metrics plus a ``digest_match`` bit asserting
    every client's final cache contents matched the uninterrupted run.
    """
    from repro.sim.restart import resume_fleet, run_fleet_interrupted

    base = SimulationConfig.scaled(
        query_count=scale["restart_queries"], object_count=scale["objects"])
    fleet = default_fleet(scale["restart_clients"], base=base)
    uninterrupted = run_fleet(fleet)
    total_events = sum(len(c.costs) for c in uninterrupted.clients)
    with tempfile.TemporaryDirectory() as tmp:
        run_fleet_interrupted(fleet, halt_after=total_events // 2, directory=tmp)
        resumed, _ = resume_fleet(tmp)
    digests_match = all(
        full.final_cache_digest == res.final_cache_digest
        for full, res in zip(uninterrupted.clients, resumed.clients))
    fingerprint: Fingerprint = {"digest_match": 1.0 if digests_match else 0.0}
    for group, summary in sorted(resumed.deterministic_group_summary().items()):
        for metric in DETERMINISTIC_METRICS:
            fingerprint[f"{group}.{metric}"] = _round(summary[metric])
    return fingerprint


def update_churn(scale: Dict[str, int]) -> Fingerprint:
    """A dynamic fleet under all three cache-consistency protocols.

    One shared server mutates mid-run (Zipf-skewed insert / delete /
    modify stream); the same fleet runs under ``versioned``, ``ttl`` and
    ``none`` consistency.  The fingerprint captures, per mode, the
    deterministic group metrics plus the protocol's own counters (applied
    updates, refreshes, invalidations and handshake bytes), so a change in
    either the mutation machinery or the protocols' verdicts shows up as a
    fingerprint mismatch.
    """
    import dataclasses

    base = SimulationConfig.scaled(
        query_count=scale["churn_queries"], object_count=scale["churn_objects"])
    static = default_fleet(scale["churn_clients"], base=base)
    fingerprint: Fingerprint = {}
    for mode in ("versioned", "ttl", "none"):
        fleet = dataclasses.replace(static,
                                    update_rate=scale["churn_rate_milli"] / 1000.0,
                                    consistency=mode)
        result = run_fleet(fleet)
        for group, summary in sorted(result.deterministic_group_summary().items()):
            for metric in DETERMINISTIC_METRICS:
                fingerprint[f"{mode}.{group}.{metric}"] = _round(summary[metric])
        costs = [cost for client in result.clients for cost in client.costs]
        fingerprint[f"{mode}.applied_updates"] = float(
            result.update_summary["applied"])
        fingerprint[f"{mode}.live_objects"] = float(
            result.update_summary["live_objects"])
        fingerprint[f"{mode}.refreshed_items"] = float(
            sum(c.refreshed_items for c in costs))
        fingerprint[f"{mode}.invalidated_items"] = float(
            sum(c.invalidated_items for c in costs))
        fingerprint[f"{mode}.sync_uplink_bytes"] = float(
            sum(c.sync_uplink_bytes for c in costs))
        fingerprint[f"{mode}.sync_downlink_bytes"] = float(
            sum(c.sync_downlink_bytes for c in costs))
    return fingerprint


def sharded_fleet(scale: Dict[str, int]) -> Fingerprint:
    """A grid-sharded fleet vs the single-server reference run.

    The same fleet runs unsharded and against ``shard_count`` grid shards
    behind the scatter-gather router.  The fingerprint carries an explicit
    ``results_match`` bit (per-query result bytes of every client pinned to
    the single-server reference — the subsystem's equivalence contract),
    the sharded run's deterministic group metrics, and the router's
    per-shard routing counters, so a change in the partitioner, the
    pruning rules or the merge logic shows up as a fingerprint mismatch.
    """
    import dataclasses

    base = SimulationConfig.scaled(
        query_count=scale["shard_queries"], object_count=scale["shard_objects"])
    fleet = default_fleet(scale["shard_clients"], base=base)
    reference = run_fleet(fleet)
    sharded = run_fleet(dataclasses.replace(
        fleet, shards=scale["shard_count"], partitioner="grid"))
    results_match = all(
        [cost.result_bytes for cost in ref_client.costs]
        == [cost.result_bytes for cost in sharded_client.costs]
        for ref_client, sharded_client in zip(reference.clients,
                                              sharded.clients))
    fingerprint: Fingerprint = {
        "results_match": 1.0 if results_match else 0.0,
        "shards": float(scale["shard_count"]),
    }
    for group, summary in sorted(sharded.deterministic_group_summary().items()):
        for metric in DETERMINISTIC_METRICS:
            fingerprint[f"{group}.{metric}"] = _round(summary[metric])
    for row in sharded.shard_rows():
        shard = int(row["shard"])
        fingerprint[f"shard{shard}.queries_routed"] = row["queries_routed"]
        fingerprint[f"shard{shard}.shards_pruned"] = row["shards_pruned"]
        fingerprint[f"shard{shard}.pages_read"] = row["pages_read"]
    return fingerprint


def durable_updates(scale: Dict[str, int]) -> Fingerprint:
    """A dynamic fleet committing every update batch through the WAL.

    Runs the same dynamic fleet twice against a disk checkpoint — once
    copy-on-write (the in-memory overlay reference) and once durable
    (every batch fsync'd to the write-ahead log) — then recovers the
    store and packs it.  The fingerprint pins the durable run's
    deterministic group metrics, a ``durable_match`` bit asserting the
    WAL never changed a decision, the commit/record counts, the
    recovered store's committed version and the pack reclamation
    numbers: a change anywhere on the durable write path (encoding,
    commit protocol, recovery, pack) shows up as a mismatch.
    """
    import dataclasses

    from repro.sim.runner import build_tree
    from repro.storage import load_tree, pack, save_tree, wal_summary

    base = SimulationConfig.scaled(
        query_count=scale["durable_queries"],
        object_count=scale["durable_objects"])
    fleet = dataclasses.replace(
        default_fleet(scale["durable_clients"], base=base),
        update_rate=scale["durable_rate_milli"] / 1000.0,
        consistency="versioned")
    with tempfile.TemporaryDirectory() as tmp:
        store_path = os.path.join(tmp, "server.rpro")
        save_tree(build_tree(base), store_path)
        reference = run_fleet(fleet, store_path=store_path)
        durable = run_fleet(fleet, store_path=store_path, durable=True)
        summary = wal_summary(store_path)
        recovered = load_tree(store_path, recover=True)
        live_objects = len(recovered.objects)
        recovered.store.close()
        packed = pack(store_path)
    def _decision_trace(client) -> List[Tuple[float, float, float]]:
        # Deterministic per-query fields only — QueryCost also carries
        # measured CPU seconds, which differ between any two runs.
        return [(cost.downlink_bytes, cost.result_bytes,
                 cost.server_page_reads) for cost in client.costs]

    durable_match = all(
        _decision_trace(ref) == _decision_trace(dur)
        and ref.final_cache_digest == dur.final_cache_digest
        for ref, dur in zip(reference.clients, durable.clients))
    fingerprint: Fingerprint = {
        "durable_match": 1.0 if durable_match else 0.0,
        "wal_commits": float(durable.update_summary["wal_commits"]),
        "wal_records": float(summary["records"]),
        "committed_version": float(summary["committed_version"]),
        "recovered_objects": float(live_objects),
        "dead_pages_reclaimed": float(packed["dead_pages_reclaimed"]),
        "pages_after_pack": float(packed["pages_after"]),
    }
    for group, summary_row in sorted(
            durable.deterministic_group_summary().items()):
        for metric in DETERMINISTIC_METRICS:
            fingerprint[f"{group}.{metric}"] = _round(summary_row[metric])
    return fingerprint


def net_fleet(scale: Dict[str, int]) -> Fingerprint:
    """Loopback server saturation: connections vs p50/p99 query latency.

    One :class:`~repro.net.server.ReproServer` behind a UNIX socket serves
    a doubling ladder of concurrent connections (1, 2, 4, ... up to
    ``net_connections``); every connection replays ``net_queries`` raw
    queries and each (connection, query) result set is checked against a
    direct in-process execution.  Unlike every other scenario the
    ``c<n>.p50_ms`` / ``c<n>.p99_ms`` entries are wall-clock — real socket
    round trips — so ``net_fleet`` runs ungated in CI; only the
    ``results_match`` bit and the rung shape are reproducible.
    """
    from repro.net.fleet import saturation_probe

    base = SimulationConfig.scaled(query_count=scale["net_queries"],
                                   object_count=scale["net_objects"])
    ladder: List[int] = []
    rung = 1
    while rung <= scale["net_connections"]:
        ladder.append(rung)
        rung *= 2
    probe = saturation_probe(base, ladder,
                             queries_per_connection=scale["net_queries"],
                             transport="uds")
    fingerprint: Fingerprint = {
        "results_match": 1.0 if probe["results_match"] else 0.0,
        "rungs": float(len(ladder)),
        "queries_per_connection": float(probe["queries_per_connection"]),
    }
    for row in probe["rungs"]:
        prefix = f"c{row['connections']}"
        fingerprint[f"{prefix}.queries"] = float(row["queries"])
        fingerprint[f"{prefix}.p50_ms"] = _round(row["p50_ms"])
        fingerprint[f"{prefix}.p99_ms"] = _round(row["p99_ms"])
    return fingerprint


def hotspot_cache(scale: Dict[str, int]) -> Fingerprint:
    """Zipf-skewed hotspot windows: partition-result cache vs plain scatter.

    A seed-deterministic stream of repeated range windows — drawn
    Zipf-skewed from a handful of hotspot sites with small jitter —
    replays cold (no client cache, every query a full virtual-root
    scatter) against two identical sharded deployments: one plain, one
    with the router-level partition-result cache attached.  The
    fingerprint pins a ``results_match`` bit (the cache's equivalence
    contract: identical per-query result id sets), the deterministic
    cache-health counters (``shards_skipped``, hit rate, probes, per-run
    page reads) and — like ``net_fleet`` — real wall-clock entries
    (``off_ms`` / ``on_ms`` / ``speedup``), so the scenario runs ungated
    in CI: only the deterministic counters are reproducible.
    """
    import random

    from repro.geometry import Rect
    from repro.obs.instrument import perf_clock
    from repro.sharding import PartitionResultCache, build_sharded_state
    from repro.workload.queries import RangeQuery

    base = SimulationConfig.scaled(query_count=scale["hotspot_queries"],
                                   object_count=scale["hotspot_objects"])
    rng = random.Random(4099)
    sites = [(rng.random(), rng.random())
             for _ in range(scale["hotspot_sites"])]
    weights = [1.0 / (rank + 1) ** 1.1 for rank in range(len(sites))]
    queries: List[RangeQuery] = []
    half, jitter = 0.015, 0.005
    for _ in range(scale["hotspot_queries"]):
        site_x, site_y = rng.choices(sites, weights)[0]
        x = min(1.0, max(0.0, site_x + rng.uniform(-jitter, jitter)))
        y = min(1.0, max(0.0, site_y + rng.uniform(-jitter, jitter)))
        queries.append(RangeQuery(window=Rect(
            max(0.0, x - half), max(0.0, y - half),
            min(1.0, x + half), min(1.0, y + half))))

    def replay(with_cache: bool):
        state = build_sharded_state(base, scale["hotspot_shards"], "grid")
        try:
            if with_cache:
                state.router.attach_result_cache(
                    PartitionResultCache(grid=scale["hotspot_grid"]))
            results = []
            start = perf_clock()
            for query in queries:
                response = state.router.execute(query)
                results.append(sorted(response.result_object_ids()))
            elapsed = perf_clock() - start
            return results, elapsed, state.shard_summary("grid")
        finally:
            state.close()

    off_results, off_seconds, off_summary = replay(with_cache=False)
    on_results, on_seconds, on_summary = replay(with_cache=True)
    consults = on_summary["cache_hits"] + on_summary["cache_misses"]
    return {
        "results_match": 1.0 if off_results == on_results else 0.0,
        "queries": float(len(queries)),
        "shards": float(scale["hotspot_shards"]),
        "shards_skipped": float(on_summary["total_skipped"]),
        "cache_hit_rate": _round(on_summary["cache_hits"] / consults)
        if consults else 0.0,
        "cache_probes": float(on_summary["cache_probes"]),
        "pages_read_off": float(off_summary["total_pages_read"]),
        "pages_read_on": float(on_summary["total_pages_read"]),
        "off_ms": round(off_seconds * 1000.0, 3),
        "on_ms": round(on_seconds * 1000.0, 3),
        "speedup": round(off_seconds / on_seconds, 3)
        if on_seconds > 0 else 0.0,
    }


def obs_overhead(scale: Dict[str, int]) -> Fingerprint:
    """Cost of the observability layer on the fleet replay hot path.

    Replays the same seeded fleet three ways: guard down (the shipped
    default), guard up with the null :class:`~repro.obs.instrument.
    Instrument` (every hook a no-op), and guard up with a recording
    :class:`~repro.obs.trace.Recorder`.  Disabled/null pairs are
    interleaved and each side keeps its best-of-``obs_pairs`` time so
    host noise hits both equally; ``overhead_frac`` is the null-vs-off
    slowdown, clamped at zero, and CI gates it at <= 0.02.  The
    ``digest_match`` bit pins the determinism contract: the recorded
    run's per-group summary must equal the disabled run's exactly.  The
    ``*_ms`` entries are wall-clock and stay out of the perf gate.
    """
    from repro.obs.instrument import Instrument, activated, perf_clock
    from repro.obs.trace import Recorder

    base = SimulationConfig.scaled(query_count=scale["obs_queries"],
                                   object_count=scale["obs_objects"])

    def replay(instrument):
        fleet = default_fleet(scale["obs_clients"], base=base)
        start = perf_clock()
        if instrument is None:
            result = run_fleet(fleet)
        else:
            with activated(instrument):
                result = run_fleet(fleet)
        return result, perf_clock() - start

    off_times: List[float] = []
    null_times: List[float] = []
    off_result = None
    for _ in range(max(1, scale["obs_pairs"])):
        off_result, off_elapsed = replay(None)
        _, null_elapsed = replay(Instrument())
        off_times.append(off_elapsed)
        null_times.append(null_elapsed)
    off_seconds, null_seconds = min(off_times), min(null_times)

    recorder = Recorder()
    recorded_result, recorded_seconds = replay(recorder)
    assert off_result is not None
    digest_match = (recorded_result.deterministic_group_summary()
                    == off_result.deterministic_group_summary())

    return {
        "digest_match": 1.0 if digest_match else 0.0,
        "queries": float(scale["obs_clients"] * scale["obs_queries"]),
        "traced_queries": float(len(recorder.roots)),
        "overhead_frac": round(max(0.0, null_seconds / off_seconds - 1.0), 4)
        if off_seconds > 0 else 0.0,
        "off_ms": round(off_seconds * 1000.0, 3),
        "null_ms": round(null_seconds * 1000.0, 3),
        "recorded_ms": round(recorded_seconds * 1000.0, 3),
    }


SCENARIOS: Dict[str, Callable[[Dict[str, int]], Fingerprint]] = {
    "fig6_models": fig6_models,
    "fleet_rush_hour": fleet_rush_hour,
    "cache_pressure": cache_pressure,
    "storage_paged": storage_paged,
    "warm_restart": warm_restart,
    "update_churn": update_churn,
    "sharded_fleet": sharded_fleet,
    "durable_updates": durable_updates,
    "net_fleet": net_fleet,
    "hotspot_cache": hotspot_cache,
    "obs_overhead": obs_overhead,
}


def scenario_names() -> List[str]:
    """All registered scenario names, in registry order."""
    return list(SCENARIOS)


def scenario_descriptions() -> Dict[str, str]:
    """Scenario name -> one-line description (from each docstring).

    Backs ``repro bench --list``: the first docstring line of every
    registered scenario, so the registry stays self-documenting.
    """
    descriptions: Dict[str, str] = {}
    for name, function in SCENARIOS.items():
        doc = (function.__doc__ or "").strip()
        descriptions[name] = doc.splitlines()[0].strip() if doc else ""
    return descriptions
