"""Timing, allocation accounting and baseline comparison for the perf suite.

A measurement run produces a :class:`BenchReport`: per scenario the best
wall-clock over N repeats, the tracemalloc peak of one instrumented repeat
and the scenario's deterministic fingerprint.  Reports serialise to the
``BENCH_*.json`` files committed at the repo root; :func:`compare_to_baseline`
implements the CI regression gate (wall-clock threshold + exact fingerprint
equality).
"""

from __future__ import annotations

import json
import platform
import time
import tracemalloc
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.perf.scenarios import SCALES, SCENARIOS, Fingerprint


@dataclass
class ScenarioMeasurement:
    """One scenario's timings, allocation stats and behaviour fingerprint.

    ``peak_alloc_bytes`` is the tracemalloc high-water mark of one
    instrumented repeat; ``live_alloc_bytes`` is what was still reachable
    when the scenario returned (retained working set, e.g. memoised ground
    truth) — tracemalloc does not report a cumulative allocation total.
    """

    name: str
    wall_seconds: float
    repeats: int
    all_wall_seconds: List[float]
    peak_alloc_bytes: int
    live_alloc_bytes: int
    fingerprint: Fingerprint

    def as_dict(self) -> Dict:
        return {
            "wall_seconds": round(self.wall_seconds, 6),
            "repeats": self.repeats,
            "all_wall_seconds": [round(t, 6) for t in self.all_wall_seconds],
            "peak_alloc_bytes": self.peak_alloc_bytes,
            "live_alloc_bytes": self.live_alloc_bytes,
            "fingerprint": self.fingerprint,
        }

    @staticmethod
    def from_dict(name: str, data: Dict) -> "ScenarioMeasurement":
        return ScenarioMeasurement(
            name=name,
            wall_seconds=float(data["wall_seconds"]),
            repeats=int(data.get("repeats", 1)),
            all_wall_seconds=[float(t) for t in data.get("all_wall_seconds", [])],
            peak_alloc_bytes=int(data.get("peak_alloc_bytes", 0)),
            live_alloc_bytes=int(data.get("live_alloc_bytes", 0)),
            fingerprint={k: float(v) for k, v in data.get("fingerprint", {}).items()},
        )


@dataclass
class BenchReport:
    """A full suite run at one scale."""

    scale: str
    scenarios: Dict[str, ScenarioMeasurement] = field(default_factory=dict)
    python_version: str = ""
    label: str = ""

    def as_dict(self) -> Dict:
        return {
            "scale": self.scale,
            "label": self.label,
            "python_version": self.python_version or platform.python_version(),
            "scenarios": {name: m.as_dict() for name, m in self.scenarios.items()},
        }

    @staticmethod
    def from_dict(data: Dict) -> "BenchReport":
        report = BenchReport(scale=data.get("scale", "default"),
                             python_version=data.get("python_version", ""),
                             label=data.get("label", ""))
        for name, entry in data.get("scenarios", {}).items():
            report.scenarios[name] = ScenarioMeasurement.from_dict(name, entry)
        return report


@dataclass(frozen=True)
class ComparisonEntry:
    """Baseline-vs-current verdict for one scenario."""

    name: str
    baseline_seconds: float
    current_seconds: float
    ratio: float                 # current / baseline; > 1 means slower
    regressed: bool
    fingerprint_matches: Optional[bool]  # None when either side lacks one

    @property
    def speedup(self) -> float:
        """Baseline / current; > 1 means the current code is faster."""
        if self.current_seconds <= 0:
            return float("inf")
        return self.baseline_seconds / self.current_seconds


def run_scenario(name: str, scale_name: str = "default", repeats: int = 3,
                 measure_allocations: bool = True) -> ScenarioMeasurement:
    """Time one scenario ``repeats`` times and trace allocations once.

    The timed repeats run without tracemalloc (it roughly doubles runtime);
    a final instrumented repeat collects peak / total allocation bytes.  The
    reported ``wall_seconds`` is the minimum over the timed repeats — the
    most repeatable statistic for CPU-bound pure-Python code.
    """
    scenario: Callable = SCENARIOS[name]
    scale = SCALES[scale_name]
    timings: List[float] = []
    fingerprint: Fingerprint = {}
    for _ in range(max(1, repeats)):
        start = time.perf_counter()  # repro: allow[OBS01] the bench timer must not route through the layer it measures
        fingerprint = scenario(scale)
        timings.append(time.perf_counter() - start)  # repro: allow[OBS01] the bench timer must not route through the layer it measures
    peak = live = 0
    if measure_allocations:
        tracemalloc.start()
        try:
            scenario(scale)
            live, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
    return ScenarioMeasurement(name=name, wall_seconds=min(timings),
                               repeats=len(timings), all_wall_seconds=timings,
                               peak_alloc_bytes=peak, live_alloc_bytes=live,
                               fingerprint=fingerprint)


def run_suite(names: Optional[Sequence[str]] = None, scale: str = "default",
              repeats: int = 3, measure_allocations: bool = True,
              label: str = "", progress: Optional[Callable[[str], None]] = None,
              ) -> BenchReport:
    """Run the named scenarios (default: all) and collect a report."""
    if scale not in SCALES:
        raise ValueError(f"unknown scale {scale!r}; choose from {sorted(SCALES)}")
    names = list(names) if names else list(SCENARIOS)
    for name in names:
        if name not in SCENARIOS:
            raise ValueError(f"unknown scenario {name!r}; "
                             f"choose from {sorted(SCENARIOS)}")
    report = BenchReport(scale=scale, label=label,
                         python_version=platform.python_version())
    for name in names:
        if progress is not None:
            progress(f"running {name} (scale={scale}, repeats={repeats}) ...")
        report.scenarios[name] = run_scenario(
            name, scale_name=scale, repeats=repeats,
            measure_allocations=measure_allocations)
    return report


# ---------------------------------------------------------------------- #
# persistence
# ---------------------------------------------------------------------- #
def write_report(path: str, current: BenchReport,
                 baseline: Optional[BenchReport] = None,
                 meta: Optional[Dict] = None) -> Dict:
    """Write a ``BENCH_*.json`` file and return the serialised payload.

    The file holds the current run, optionally the baseline it is being
    compared to, and — when both are present — per-scenario speedups.
    """
    payload: Dict = {"meta": dict(meta or {})}
    payload["meta"].setdefault("python_version", platform.python_version())
    payload["current"] = current.as_dict()
    if baseline is not None:
        payload["baseline"] = baseline.as_dict()
        speedups = {}
        for name, measurement in current.scenarios.items():
            base = baseline.scenarios.get(name)
            if base is not None and measurement.wall_seconds > 0:
                speedups[name] = round(base.wall_seconds / measurement.wall_seconds, 3)
        payload["speedup"] = speedups
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=False)
        handle.write("\n")
    return payload


def load_report(path: str, section: str = "current") -> BenchReport:
    """Load the ``section`` ("current" or "baseline") of a ``BENCH_*.json``."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if section not in payload:
        raise ValueError(f"{path} has no {section!r} section")
    return BenchReport.from_dict(payload[section])


# ---------------------------------------------------------------------- #
# regression gate
# ---------------------------------------------------------------------- #
def compare_to_baseline(current: BenchReport, baseline: BenchReport,
                        max_regression: float = 0.25,
                        allow_missing: bool = False) -> List[ComparisonEntry]:
    """Compare two reports scenario by scenario.

    A scenario *regresses* when its wall-clock grew by more than
    ``max_regression`` (0.25 = 25%) over the baseline.  Fingerprints must
    match exactly — a mismatch is reported so the caller can fail the gate:
    a "speedup" that changes decisions is a bug, not a win.

    A current scenario absent from the baseline is an error by default — a
    renamed or newly added scenario must not silently fall out of the gate;
    regenerate the baseline file (or pass ``allow_missing=True``) instead.
    """
    if current.scale != baseline.scale:
        raise ValueError(
            f"scale mismatch: current={current.scale!r} baseline={baseline.scale!r}; "
            "regression comparison requires identical scenario parameters")
    missing = [name for name in current.scenarios if name not in baseline.scenarios]
    if missing and not allow_missing:
        raise ValueError(
            "scenarios missing from the baseline (regenerate it or pass "
            f"allow_missing=True): {', '.join(sorted(missing))}")
    entries: List[ComparisonEntry] = []
    for name, measurement in current.scenarios.items():
        base = baseline.scenarios.get(name)
        if base is None:
            continue
        ratio = (measurement.wall_seconds / base.wall_seconds
                 if base.wall_seconds > 0 else float("inf"))
        matches: Optional[bool] = None
        if measurement.fingerprint and base.fingerprint:
            matches = measurement.fingerprint == base.fingerprint
        entries.append(ComparisonEntry(
            name=name, baseline_seconds=base.wall_seconds,
            current_seconds=measurement.wall_seconds, ratio=ratio,
            regressed=ratio > 1.0 + max_regression,
            fingerprint_matches=matches))
    return entries


def format_report(current: BenchReport,
                  comparison: Optional[List[ComparisonEntry]] = None) -> str:
    """Human-readable table of a run (and its baseline comparison, if any)."""
    lines = [f"perf suite — scale={current.scale}, "
             f"python {current.python_version or platform.python_version()}"]
    header = f"{'scenario':<18} {'wall (s)':>10} {'peak alloc':>12}"
    if comparison is not None:
        header += f" {'baseline':>10} {'speedup':>8} {'fingerprint':>12}"
    lines.append(header)
    lines.append("-" * len(header))
    by_name = {entry.name: entry for entry in (comparison or [])}
    for name, measurement in current.scenarios.items():
        row = (f"{name:<18} {measurement.wall_seconds:>10.3f} "
               f"{measurement.peak_alloc_bytes / 1024:>10.0f}KB")
        entry = by_name.get(name)
        if comparison is not None and entry is not None:
            fp = ("match" if entry.fingerprint_matches
                  else "MISMATCH" if entry.fingerprint_matches is False else "n/a")
            flag = " REGRESSED" if entry.regressed else ""
            row += f" {entry.baseline_seconds:>10.3f} {entry.speedup:>7.2f}x {fp:>12}{flag}"
        lines.append(row)
    return "\n".join(lines)
