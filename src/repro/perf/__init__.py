"""Performance harness: repeatable scenario timings and regression gates.

The package has two halves:

* :mod:`repro.perf.scenarios` — a registry of named end-to-end scenarios
  (fig6-style model comparison, fleet rush hour, cache-pressure sweep), each
  returning a deterministic *fingerprint* of its decisions so two versions of
  the code can be proved behaviour-identical, not just compared on speed;
* :mod:`repro.perf.harness` — runs scenarios under wall-clock and
  allocation instrumentation, writes ``BENCH_*.json`` reports and compares a
  run against a committed baseline (the ``repro bench`` CLI and the CI
  perf-smoke job are thin wrappers over it).
"""

from repro.perf.harness import (
    BenchReport,
    ScenarioMeasurement,
    compare_to_baseline,
    format_report,
    load_report,
    run_suite,
    write_report,
)
from repro.perf.scenarios import (
    SCENARIOS,
    SCALES,
    scenario_descriptions,
    scenario_names,
)

__all__ = [
    "BenchReport",
    "ScenarioMeasurement",
    "SCENARIOS",
    "SCALES",
    "compare_to_baseline",
    "format_report",
    "load_report",
    "run_suite",
    "scenario_descriptions",
    "scenario_names",
    "write_report",
]
